//! Lowering from the structured AST to the PTX-like linear IR.
//!
//! This pass plays the role `nvcc`'s code generator plays in the paper's
//! pipeline: it turns structured loops and branches into basic blocks with
//! explicit address arithmetic, loop bookkeeping (induction increments,
//! exit tests) and barriers, assigns virtual registers, and records the
//! symbolic execution frequency of every block.
//!
//! Two properties matter downstream:
//!
//! 1. **Loop overhead is explicit.** Every loop iteration pays an
//!    induction-variable add, an exit-test `setp`, and a branch. The
//!    unrolling transformation (in `oriole-codegen`) reduces the number of
//!    latch executions — exactly the effect loop unrolling has on real
//!    SASS, and the reason the `UIF` tuning parameter changes instruction
//!    mixes.
//! 2. **Fast-math changes instruction selection.** With
//!    [`LowerOptions::fast_math`], divides, square roots, exponentials and
//!    trigonometric operations lower to short approximation sequences
//!    instead of refined full-precision expansions, mirroring
//!    `-use_fast_math`.
//!
//! # Arena-interned lowering
//!
//! Blocks are born Vec-indexed: every control-flow edge is expressed as a
//! dense [`BlockId`] the moment it is created (`upcoming_id` arithmetic on
//! the arena length), never as a label string to be resolved later. Labels
//! exist purely for human-readable disassembly, so during lowering the
//! current label is a two-word [`PendingLabel`] (stem + sequence number)
//! that is materialized to its `String` form only when the block seals.
//! The same walk optionally feeds an [`IndexBuilder`] so that
//! [`lower_indexed`] yields the per-program [`ProgramIndex`] without a
//! second pass over the finished instruction vectors. The original
//! string-label implementation is retained verbatim as the `oracle` test
//! module and property tests pin the two bit-identical.

use crate::ast::{AccessPattern, AluOp, KernelAst, MemSpace, MemStmt, Stmt, TripCount};
use crate::block::{BasicBlock, BlockId, FreqExpr, Program, ProgramMeta, Terminator};
use crate::index::{IndexBuilder, ProgramIndex};
use crate::instr::{Instr, Operand, Pred, Reg, SpecialReg};
use crate::isa::{CmpOp, OpKind, Opcode, Ty};
use oriole_arch::Family;

/// Options affecting instruction selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LowerOptions {
    /// Select fast approximate sequences for div/sqrt/exp/log/sin
    /// (the `-use_fast_math` compiler flag).
    pub fast_math: bool,
}

/// Lowers a kernel AST to a linear-IR [`Program`] targeting `family`.
///
/// The produced program's `meta.regs_per_thread` is left at zero — the
/// register allocator in `oriole-codegen` fills it in, exactly as `ptxas`
/// (not the PTX generator) decides register usage in the real toolchain.
pub fn lower(ast: &KernelAst, family: Family, opts: LowerOptions) -> Program {
    let mut ctx = LowerCtx::new(family, opts);
    ctx.run(ast).0
}

/// Lowers a kernel AST and builds its [`ProgramIndex`] in the same walk.
///
/// The index is accumulated as blocks seal (edges, summary tapes,
/// divergence flags, grid strides), so the front end pays no separate
/// post-pass over the finished program. The result is bit-identical to
/// `lower` followed by `ProgramIndex::build` — property-tested, and
/// the fused path bumps the process-wide index-build counter exactly
/// once, same as `build` would.
pub fn lower_indexed(
    ast: &KernelAst,
    family: Family,
    opts: LowerOptions,
) -> (Program, ProgramIndex) {
    let mut ctx = LowerCtx::new(family, opts);
    ctx.accum = Some(IndexBuilder::new());
    let (program, index) = ctx.run(ast);
    (program, index.expect("accumulator installed above"))
}

/// Label stems the lowerer can open blocks under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LabelStem {
    Entry,
    Loop,
    After,
    Then,
    Else,
    Merge,
}

impl LabelStem {
    fn as_str(self) -> &'static str {
        match self {
            LabelStem::Entry => "entry",
            LabelStem::Loop => "loop",
            LabelStem::After => "after",
            LabelStem::Then => "then",
            LabelStem::Else => "else",
            LabelStem::Merge => "merge",
        }
    }
}

/// An interned block label: stem plus sequence number, `Copy`, no heap.
///
/// Lowering never consults label contents — all control flow is dense
/// [`BlockId`] arithmetic — so the `String` form is produced exactly once,
/// at seal time. `materialize` must stay byte-identical to the eager
/// `format!("{stem}{seq}")` the string oracle uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingLabel {
    stem: LabelStem,
    seq: u32,
}

impl PendingLabel {
    /// The unnumbered label of the first block.
    const ENTRY: PendingLabel = PendingLabel { stem: LabelStem::Entry, seq: 0 };

    fn materialize(self) -> String {
        match self.stem {
            LabelStem::Entry => self.stem.as_str().to_string(),
            stem => format!("{}{}", stem.as_str(), self.seq),
        }
    }
}

struct LowerCtx {
    family: Family,
    opts: LowerOptions,
    blocks: Vec<BasicBlock>,
    /// Instructions accumulating for the block currently being built.
    cur: Vec<Instr>,
    cur_label: PendingLabel,
    cur_freq: FreqExpr,
    next_reg: u32,
    next_pred: u32,
    next_label: u32,
    /// Rolling window of recently defined value registers, used as
    /// operand sources so live ranges look realistic.
    window: Vec<Reg>,
    /// Round-robin cursor into `window`.
    cursor: usize,
    /// When set, the [`ProgramIndex`] is accumulated as blocks seal.
    accum: Option<IndexBuilder>,
}

impl LowerCtx {
    fn new(family: Family, opts: LowerOptions) -> Self {
        Self {
            family,
            opts,
            blocks: Vec::new(),
            cur: Vec::new(),
            cur_label: PendingLabel::ENTRY,
            cur_freq: FreqExpr::Once,
            next_reg: 0,
            next_pred: 0,
            next_label: 0,
            window: Vec::new(),
            cursor: 0,
            accum: None,
        }
    }

    fn run(&mut self, ast: &KernelAst) -> (Program, Option<ProgramIndex>) {
        self.emit_prologue();
        let body_freq = FreqExpr::Once;
        self.lower_stmts(&ast.body, &body_freq);
        // Final block: exit.
        self.cur.push(Instr::new(Opcode::new(OpKind::Exit, Ty::U32), None, vec![]));
        self.seal_block(Terminator::Ret);
        let program = Program {
            name: ast.name.clone(),
            meta: ProgramMeta {
                family: self.family,
                regs_per_thread: 0,
                smem_static: 0,
                spill_bytes: 0,
            },
            blocks: std::mem::take(&mut self.blocks).into(),
        };
        debug_assert!(program.validate().is_empty(), "{:?}", program.validate());
        let index = self.accum.take().map(|b| b.finish(&program));
        (program, index)
    }

    /// Global-thread-id computation every data-parallel kernel performs.
    fn emit_prologue(&mut self) {
        let tid = self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::TidX)]);
        let ctaid = self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::CtaIdX)]);
        let ntid = self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::NTidX)]);
        let base = self.def(
            OpKind::Mul,
            Ty::S32,
            vec![Operand::Reg(ctaid), Operand::Reg(ntid)],
        );
        let gtid = self.def(OpKind::Add, Ty::S32, vec![Operand::Reg(base), Operand::Reg(tid)]);
        self.window = vec![tid, gtid];
        self.cursor = 0;
    }

    // ------------------------------------------------------------------
    // Register plumbing

    fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    fn fresh_pred(&mut self) -> Pred {
        let p = Pred(self.next_pred);
        self.next_pred += 1;
        p
    }

    fn fresh_label(&mut self, stem: LabelStem) -> PendingLabel {
        let l = PendingLabel { stem, seq: self.next_label };
        self.next_label += 1;
        l
    }

    /// Picks a source register from the rolling window.
    fn pick(&mut self) -> Reg {
        if self.window.is_empty() {
            // Should not happen after the prologue, but stay total.
            let r = self.def(OpKind::Mov, Ty::F32, vec![Operand::FImm(0.0)]);
            return r;
        }
        let r = self.window[self.cursor % self.window.len()];
        self.cursor += 1;
        r
    }

    /// Emits an instruction defining a fresh register and pushes it into
    /// the source window.
    fn def(&mut self, kind: OpKind, ty: Ty, srcs: Vec<Operand>) -> Reg {
        let dst = self.fresh_reg();
        self.cur.push(Instr::new(Opcode::new(kind, ty), Some(dst), srcs));
        self.push_window(dst);
        dst
    }

    fn push_window(&mut self, r: Reg) {
        const WINDOW: usize = 12;
        self.window.push(r);
        if self.window.len() > WINDOW {
            self.window.remove(0);
        }
    }

    // ------------------------------------------------------------------
    // Block plumbing

    /// Finishes the current block with `term` and starts a new empty one
    /// labelled `next_label` at frequency `next_freq`.
    fn seal_and_start(&mut self, term: Terminator, next_label: PendingLabel, next_freq: FreqExpr) {
        self.seal_block(term);
        self.cur_label = next_label;
        self.cur_freq = next_freq;
    }

    fn seal_block(&mut self, term: Terminator) {
        let block = BasicBlock {
            label: self.cur_label.materialize(),
            instrs: std::mem::take(&mut self.cur),
            term,
            freq: self.cur_freq.clone(),
        };
        if let Some(accum) = &mut self.accum {
            accum.seal(&block);
        }
        self.blocks.push(block);
    }

    /// Replaces the terminator of an already-sealed block (the if/else
    /// placeholder-patch protocol), keeping the fused index in sync.
    fn patch_term(&mut self, index: usize, term: Terminator) {
        if let Some(accum) = &mut self.accum {
            accum.patch(BlockId(index as u32), &term);
        }
        self.blocks[index].term = term;
    }

    /// Id the *next* sealed block will get.
    fn upcoming_id(&self, offset: u32) -> BlockId {
        BlockId(self.blocks.len() as u32 + offset)
    }

    // ------------------------------------------------------------------
    // Statement lowering

    fn lower_stmts(&mut self, stmts: &[Stmt], freq: &FreqExpr) {
        for stmt in stmts {
            self.lower_stmt(stmt, freq);
        }
    }

    fn lower_stmt(&mut self, stmt: &Stmt, freq: &FreqExpr) {
        match stmt {
            Stmt::Op(op) => {
                for _ in 0..op.count {
                    self.lower_alu(op.op);
                }
            }
            Stmt::Load(m) => {
                for _ in 0..m.count {
                    self.lower_load(m);
                }
            }
            Stmt::Store(m) => {
                for _ in 0..m.count {
                    self.lower_store(m);
                }
            }
            Stmt::SyncThreads => {
                self.cur
                    .push(Instr::new(Opcode::new(OpKind::Bar, Ty::U32), None, vec![]));
            }
            Stmt::Loop(l) => self.lower_loop(l, freq),
            Stmt::If(b) => self.lower_if(b, freq),
        }
    }

    fn lower_alu(&mut self, op: AluOp) {
        let fast = self.opts.fast_math;
        match op {
            AluOp::AddF32 => {
                let (a, b) = (self.pick(), self.pick());
                self.def(OpKind::Add, Ty::F32, vec![Operand::Reg(a), Operand::Reg(b)]);
            }
            AluOp::MulF32 => {
                let (a, b) = (self.pick(), self.pick());
                self.def(OpKind::Mul, Ty::F32, vec![Operand::Reg(a), Operand::Reg(b)]);
            }
            AluOp::FmaF32 => {
                let (a, b, c) = (self.pick(), self.pick(), self.pick());
                self.def(
                    OpKind::Fma,
                    Ty::F32,
                    vec![Operand::Reg(a), Operand::Reg(b), Operand::Reg(c)],
                );
            }
            AluOp::AddF64 => {
                let (a, b) = (self.pick(), self.pick());
                self.def(OpKind::Add, Ty::F64, vec![Operand::Reg(a), Operand::Reg(b)]);
            }
            AluOp::MulF64 => {
                let (a, b) = (self.pick(), self.pick());
                self.def(OpKind::Mul, Ty::F64, vec![Operand::Reg(a), Operand::Reg(b)]);
            }
            AluOp::FmaF64 => {
                let (a, b, c) = (self.pick(), self.pick(), self.pick());
                self.def(
                    OpKind::Fma,
                    Ty::F64,
                    vec![Operand::Reg(a), Operand::Reg(b), Operand::Reg(c)],
                );
            }
            AluOp::DivF32 => {
                // Full precision: reciprocal + multiply + two Newton
                // refinement FMAs. Fast math: reciprocal + multiply.
                let d = self.pick();
                let r = self.def(OpKind::Rcp, Ty::F32, vec![Operand::Reg(d)]);
                let n = self.pick();
                let q = self.def(OpKind::Mul, Ty::F32, vec![Operand::Reg(n), Operand::Reg(r)]);
                if !fast {
                    let e =
                        self.def(OpKind::Fma, Ty::F32, vec![
                            Operand::Reg(q),
                            Operand::Reg(d),
                            Operand::Reg(n),
                        ]);
                    self.def(OpKind::Fma, Ty::F32, vec![
                        Operand::Reg(e),
                        Operand::Reg(r),
                        Operand::Reg(q),
                    ]);
                }
            }
            AluOp::SqrtF32 => {
                let a = self.pick();
                let s = self.def(OpKind::Sqrt, Ty::F32, vec![Operand::Reg(a)]);
                if !fast {
                    let h = self.def(OpKind::Mul, Ty::F32, vec![
                        Operand::Reg(s),
                        Operand::FImm(0.5),
                    ]);
                    self.def(OpKind::Fma, Ty::F32, vec![
                        Operand::Reg(h),
                        Operand::Reg(s),
                        Operand::Reg(a),
                    ]);
                }
            }
            AluOp::ExpF32 => {
                let a = self.pick();
                let scaled = self.def(OpKind::Mul, Ty::F32, vec![
                    Operand::Reg(a),
                    Operand::FImm(std::f64::consts::LOG2_E),
                ]);
                let e = self.def(OpKind::Ex2, Ty::F32, vec![Operand::Reg(scaled)]);
                if !fast {
                    let f = self.def(OpKind::Fma, Ty::F32, vec![
                        Operand::Reg(e),
                        Operand::Reg(scaled),
                        Operand::Reg(a),
                    ]);
                    self.def(OpKind::Fma, Ty::F32, vec![
                        Operand::Reg(f),
                        Operand::Reg(e),
                        Operand::Reg(a),
                    ]);
                }
            }
            AluOp::LogF32 => {
                let a = self.pick();
                let l = self.def(OpKind::Lg2, Ty::F32, vec![Operand::Reg(a)]);
                self.def(OpKind::Mul, Ty::F32, vec![
                    Operand::Reg(l),
                    Operand::FImm(std::f64::consts::LN_2),
                ]);
                if !fast {
                    let p = self.pick();
                    self.def(OpKind::Fma, Ty::F32, vec![
                        Operand::Reg(l),
                        Operand::Reg(p),
                        Operand::Reg(a),
                    ]);
                }
            }
            AluOp::SinCosF32 => {
                let a = self.pick();
                if !fast {
                    // Payne–Hanek-style range reduction before the SFU op.
                    let k = self.def(OpKind::Fma, Ty::F32, vec![
                        Operand::Reg(a),
                        Operand::FImm(std::f64::consts::FRAC_1_PI),
                        Operand::FImm(0.5),
                    ]);
                    let r = self.def(OpKind::Fma, Ty::F32, vec![
                        Operand::Reg(k),
                        Operand::FImm(-std::f64::consts::PI),
                        Operand::Reg(a),
                    ]);
                    self.def(OpKind::Sin, Ty::F32, vec![Operand::Reg(r)]);
                } else {
                    self.def(OpKind::Sin, Ty::F32, vec![Operand::Reg(a)]);
                }
            }
            AluOp::CmpF32 => {
                let (a, b) = (self.pick(), self.pick());
                let p = self.fresh_pred();
                let mut i = Instr::new(
                    Opcode::new(OpKind::Setp(CmpOp::Lt), Ty::F32),
                    None,
                    vec![Operand::Reg(a), Operand::Reg(b)],
                );
                i.dst_pred = Some(p);
                self.cur.push(i);
            }
            AluOp::MinMaxF32 => {
                let (a, b) = (self.pick(), self.pick());
                self.def(OpKind::Min, Ty::F32, vec![Operand::Reg(a), Operand::Reg(b)]);
            }
            AluOp::AddI32 => {
                let a = self.pick();
                self.def(OpKind::Add, Ty::S32, vec![Operand::Reg(a), Operand::Imm(1)]);
            }
            AluOp::MulI32 => {
                let (a, b) = (self.pick(), self.pick());
                if self.family >= Family::Maxwell {
                    // Maxwell/Pascal have no 32-bit IMUL datapath: the
                    // compiler emits an XMAD sequence (two 16-bit
                    // multiply-adds plus a shift).
                    let lo =
                        self.def(OpKind::Mul, Ty::S32, vec![Operand::Reg(a), Operand::Reg(b)]);
                    let sh = self.def(OpKind::Shift, Ty::U32, vec![
                        Operand::Reg(lo),
                        Operand::Imm(16),
                    ]);
                    self.def(OpKind::Add, Ty::S32, vec![Operand::Reg(sh), Operand::Reg(lo)]);
                } else {
                    self.def(OpKind::Mul, Ty::S32, vec![Operand::Reg(a), Operand::Reg(b)]);
                }
            }
            AluOp::CmpI32 => {
                let (a, b) = (self.pick(), self.pick());
                let p = self.fresh_pred();
                let mut i = Instr::new(
                    Opcode::new(OpKind::Setp(CmpOp::Lt), Ty::S32),
                    None,
                    vec![Operand::Reg(a), Operand::Reg(b)],
                );
                i.dst_pred = Some(p);
                self.cur.push(i);
            }
            AluOp::BitI32 => {
                let a = self.pick();
                self.def(OpKind::Logic, Ty::U32, vec![Operand::Reg(a), Operand::Imm(0xff)]);
            }
            AluOp::ShuffleF32 => {
                let a = self.pick();
                if self.family == Family::Fermi {
                    // Fermi (cc 2.x) has no warp-shuffle datapath: the
                    // lane-exchange idiom round-trips through shared
                    // memory instead.
                    let addr = self.def(OpKind::Add, Ty::S32, vec![
                        Operand::Reg(a),
                        Operand::Imm(4),
                    ]);
                    let st = Instr::new(
                        Opcode::new(OpKind::St(MemSpace::Shared), Ty::F32),
                        None,
                        vec![Operand::Reg(addr), Operand::Reg(a)],
                    )
                    .with_mem(AccessPattern::Coalesced);
                    self.cur.push(st);
                    let dst = self.fresh_reg();
                    let ld = Instr::new(
                        Opcode::new(OpKind::Ld(MemSpace::Shared), Ty::F32),
                        Some(dst),
                        vec![Operand::Reg(addr)],
                    )
                    .with_mem(AccessPattern::Coalesced);
                    self.cur.push(ld);
                    self.push_window(dst);
                } else {
                    self.def(OpKind::Logic, Ty::U32, vec![Operand::Reg(a), Operand::Imm(0xff)]);
                }
            }
            AluOp::CvtI32F32 => {
                let a = self.pick();
                self.def(OpKind::Cvt(Ty::S32), Ty::F32, vec![Operand::Reg(a)]);
            }
            AluOp::Cvt64 => {
                let a = self.pick();
                self.def(OpKind::Cvt(Ty::F32), Ty::F64, vec![Operand::Reg(a)]);
            }
        }
    }

    fn addr_ty(elem_bytes: u8) -> Ty {
        if elem_bytes == 8 {
            Ty::F64
        } else {
            Ty::F32
        }
    }

    /// Address computation for one access; the pattern decides how much
    /// integer arithmetic is needed.
    fn lower_address(&mut self, m: &MemStmt) -> Reg {
        match m.pattern {
            AccessPattern::Coalesced => {
                let base = self.pick();
                self.def(OpKind::Add, Ty::S32, vec![
                    Operand::Reg(base),
                    Operand::Imm(i64::from(m.elem_bytes)),
                ])
            }
            AccessPattern::Strided(stride) => {
                let idx = self.pick();
                let scaled = self.def(OpKind::Mul, Ty::S32, vec![
                    Operand::Reg(idx),
                    Operand::Imm(i64::from(stride)),
                ]);
                self.def(OpKind::Add, Ty::S32, vec![
                    Operand::Reg(scaled),
                    Operand::Imm(i64::from(m.elem_bytes)),
                ])
            }
            AccessPattern::Random => {
                let idx = self.pick();
                let hashed = self.def(OpKind::Logic, Ty::U32, vec![
                    Operand::Reg(idx),
                    Operand::Imm(0x9e37),
                ]);
                self.def(OpKind::Add, Ty::S32, vec![
                    Operand::Reg(hashed),
                    Operand::Imm(i64::from(m.elem_bytes)),
                ])
            }
            AccessPattern::Broadcast => {
                // Uniform address: one mov from a parameter.
                self.def(OpKind::Mov, Ty::S32, vec![Operand::Param(0)])
            }
        }
    }

    fn lower_load(&mut self, m: &MemStmt) {
        let addr = self.lower_address(m);
        let ty = Self::addr_ty(m.elem_bytes);
        let dst = self.fresh_reg();
        let instr = Instr::new(
            Opcode::new(OpKind::Ld(m.space), ty),
            Some(dst),
            vec![Operand::Reg(addr)],
        )
        .with_mem(m.pattern);
        self.cur.push(instr);
        self.push_window(dst);
    }

    fn lower_store(&mut self, m: &MemStmt) {
        let addr = self.lower_address(m);
        let val = self.pick();
        let ty = Self::addr_ty(m.elem_bytes);
        let instr = Instr::new(
            Opcode::new(OpKind::St(m.space), ty),
            None,
            vec![Operand::Reg(addr), Operand::Reg(val)],
        )
        .with_mem(m.pattern);
        self.cur.push(instr);
    }

    fn lower_loop(&mut self, l: &crate::ast::Loop, freq: &FreqExpr) {
        // Preheader: induction init + (for grid-stride) bound arithmetic.
        let induction = self.def(OpKind::Mov, Ty::S32, vec![Operand::Imm(0)]);
        if matches!(l.trip, TripCount::GridStride(_) | TripCount::BlockShare(_)) {
            // bound = ceil(items / (ntid*nctaid)) — division by the grid
            // size, two extra integer ops.
            let ntid = self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::NTidX)]);
            let ncta =
                self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::NCtaIdX)]);
            self.def(OpKind::Mul, Ty::S32, vec![Operand::Reg(ntid), Operand::Reg(ncta)]);
        }

        let body_label = self.fresh_label(LabelStem::Loop);
        let body_freq = freq.clone().times(FreqExpr::Trip(l.trip));
        // Current block jumps into the loop body.
        let body_id = self.upcoming_id(1);
        self.seal_and_start(Terminator::Jump(body_id), body_label, body_freq.clone());

        self.lower_stmts(&l.body, &body_freq);

        // Latch: induction increment + exit test + loop-back.
        let next = self.def(OpKind::Add, Ty::S32, vec![Operand::Reg(induction), Operand::Imm(1)]);
        let p = self.fresh_pred();
        let mut setp = Instr::new(
            Opcode::new(OpKind::Setp(CmpOp::Lt), Ty::S32),
            None,
            vec![Operand::Reg(next), Operand::Imm(1 << 20)],
        );
        setp.dst_pred = Some(p);
        self.cur.push(setp);

        let exit_label = self.fresh_label(LabelStem::After);
        // The body chain may have created inner blocks; the loop target is
        // the first body block (body_id), the exit is the block we are
        // about to open.
        let exit_id = self.upcoming_id(1);
        self.seal_and_start(
            Terminator::LoopBack { target: body_id, exit: exit_id, trip: l.trip },
            exit_label,
            freq.clone(),
        );
    }

    fn lower_if(&mut self, b: &crate::ast::Branch, freq: &FreqExpr) {
        use crate::ast::DivergenceKind;
        // Condition: compare something thread-dependent (or uniform).
        let lhs = if b.divergence == DivergenceKind::ThreadDependent {
            self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::TidX)])
        } else {
            self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::CtaIdX)])
        };
        let p = self.fresh_pred();
        let mut setp = Instr::new(
            Opcode::new(OpKind::Setp(CmpOp::Lt), Ty::S32),
            None,
            vec![Operand::Reg(lhs), Operand::Param(1)],
        );
        setp.dst_pred = Some(p);
        self.cur.push(setp);

        let divergent = b.divergence == DivergenceKind::ThreadDependent;
        let then_label = self.fresh_label(LabelStem::Then);
        let frac = |p: f64| {
            if divergent {
                FreqExpr::DivFraction(p)
            } else {
                FreqExpr::Fraction(p)
            }
        };
        let then_freq = freq.clone().times(frac(b.taken_fraction));
        let else_freq = freq.clone().times(frac(1.0 - b.taken_fraction));
        let has_else = !b.else_body.is_empty();

        // We don't know the block ids of the else/merge chains until the
        // then-chain is lowered, so lower into a scratch program and
        // re-link. Simpler: reserve the pattern — seal current with a
        // placeholder and patch afterwards.
        let cond_block_index = self.blocks.len();
        self.seal_and_start(
            Terminator::Ret, // placeholder, patched below
            then_label,
            then_freq,
        );
        let then_id = BlockId(cond_block_index as u32 + 1);
        let active_freq = self.cur_freq.clone();
        self.lower_stmts(&b.then_body, &active_freq);
        let then_end_index = self.blocks.len();
        let next_label =
            self.fresh_label(if has_else { LabelStem::Else } else { LabelStem::Merge });
        self.seal_and_start(
            Terminator::Ret, // placeholder, patched below
            next_label,
            if has_else { else_freq.clone() } else { freq.clone() },
        );

        if has_else {
            let else_id = BlockId(then_end_index as u32 + 1);
            let active_freq = self.cur_freq.clone();
            self.lower_stmts(&b.else_body, &active_freq);
            let else_end_index = self.blocks.len();
            let merge_label = self.fresh_label(LabelStem::Merge);
            self.seal_and_start(
                Terminator::Ret, // placeholder, patched below
                merge_label,
                freq.clone(),
            );
            let merge_id = BlockId(else_end_index as u32 + 1);
            self.patch_term(cond_block_index, Terminator::CondBranch {
                pred: p,
                taken: then_id,
                fallthrough: else_id,
                divergent,
                taken_fraction: b.taken_fraction,
            });
            self.patch_term(then_end_index, Terminator::Jump(merge_id));
            self.patch_term(else_end_index, Terminator::Jump(merge_id));
        } else {
            let merge_id = BlockId(then_end_index as u32 + 1);
            self.patch_term(cond_block_index, Terminator::CondBranch {
                pred: p,
                taken: then_id,
                fallthrough: merge_id,
                divergent,
                taken_fraction: b.taken_fraction,
            });
            self.patch_term(then_end_index, Terminator::Jump(merge_id));
        }
    }
}

/// The pre-arena string-label lowerer, retained verbatim as the oracle
/// for the interned-label implementation: labels are formatted eagerly
/// with `format!`, terminator patches write straight into the block
/// vector, and no index is accumulated. Property tests pin
/// [`lower`](super::lower) bit-identical to [`oracle::lower`](lower).
#[cfg(test)]
pub(crate) mod oracle {
    use super::*;

    pub(crate) fn lower(ast: &KernelAst, family: Family, opts: LowerOptions) -> Program {
        let mut lowerer = Lowerer::new(family, opts);
        lowerer.run(ast)
    }

    struct Lowerer {
        family: Family,
        opts: LowerOptions,
        blocks: Vec<BasicBlock>,
        cur: Vec<Instr>,
        cur_label: String,
        cur_freq: FreqExpr,
        next_reg: u32,
        next_pred: u32,
        next_label: u32,
        window: Vec<Reg>,
        cursor: usize,
    }

    impl Lowerer {
        fn new(family: Family, opts: LowerOptions) -> Self {
            Self {
                family,
                opts,
                blocks: Vec::new(),
                cur: Vec::new(),
                cur_label: "entry".to_string(),
                cur_freq: FreqExpr::Once,
                next_reg: 0,
                next_pred: 0,
                next_label: 0,
                window: Vec::new(),
                cursor: 0,
            }
        }

        fn run(&mut self, ast: &KernelAst) -> Program {
            self.emit_prologue();
            let body_freq = FreqExpr::Once;
            self.lower_stmts(&ast.body, &body_freq);
            self.cur.push(Instr::new(Opcode::new(OpKind::Exit, Ty::U32), None, vec![]));
            self.seal_block(Terminator::Ret);
            let program = Program {
                name: ast.name.clone(),
                meta: ProgramMeta {
                    family: self.family,
                    regs_per_thread: 0,
                    smem_static: 0,
                    spill_bytes: 0,
                },
                blocks: std::mem::take(&mut self.blocks).into(),
            };
            debug_assert!(program.validate().is_empty(), "{:?}", program.validate());
            program
        }

        fn emit_prologue(&mut self) {
            let tid = self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::TidX)]);
            let ctaid =
                self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::CtaIdX)]);
            let ntid = self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::NTidX)]);
            let base = self.def(
                OpKind::Mul,
                Ty::S32,
                vec![Operand::Reg(ctaid), Operand::Reg(ntid)],
            );
            let gtid =
                self.def(OpKind::Add, Ty::S32, vec![Operand::Reg(base), Operand::Reg(tid)]);
            self.window = vec![tid, gtid];
            self.cursor = 0;
        }

        fn fresh_reg(&mut self) -> Reg {
            let r = Reg(self.next_reg);
            self.next_reg += 1;
            r
        }

        fn fresh_pred(&mut self) -> Pred {
            let p = Pred(self.next_pred);
            self.next_pred += 1;
            p
        }

        fn fresh_label(&mut self, stem: &str) -> String {
            let l = format!("{stem}{}", self.next_label);
            self.next_label += 1;
            l
        }

        fn pick(&mut self) -> Reg {
            if self.window.is_empty() {
                let r = self.def(OpKind::Mov, Ty::F32, vec![Operand::FImm(0.0)]);
                return r;
            }
            let r = self.window[self.cursor % self.window.len()];
            self.cursor += 1;
            r
        }

        fn def(&mut self, kind: OpKind, ty: Ty, srcs: Vec<Operand>) -> Reg {
            let dst = self.fresh_reg();
            self.cur.push(Instr::new(Opcode::new(kind, ty), Some(dst), srcs));
            self.push_window(dst);
            dst
        }

        fn push_window(&mut self, r: Reg) {
            const WINDOW: usize = 12;
            self.window.push(r);
            if self.window.len() > WINDOW {
                self.window.remove(0);
            }
        }

        fn seal_and_start(&mut self, term: Terminator, next_label: String, next_freq: FreqExpr) {
            self.seal_block(term);
            self.cur_label = next_label;
            self.cur_freq = next_freq;
        }

        fn seal_block(&mut self, term: Terminator) {
            let block = BasicBlock {
                label: std::mem::take(&mut self.cur_label),
                instrs: std::mem::take(&mut self.cur),
                term,
                freq: self.cur_freq.clone(),
            };
            self.blocks.push(block);
        }

        fn upcoming_id(&self, offset: u32) -> BlockId {
            BlockId(self.blocks.len() as u32 + offset)
        }

        fn lower_stmts(&mut self, stmts: &[Stmt], freq: &FreqExpr) {
            for stmt in stmts {
                self.lower_stmt(stmt, freq);
            }
        }

        fn lower_stmt(&mut self, stmt: &Stmt, freq: &FreqExpr) {
            match stmt {
                Stmt::Op(op) => {
                    for _ in 0..op.count {
                        self.lower_alu(op.op);
                    }
                }
                Stmt::Load(m) => {
                    for _ in 0..m.count {
                        self.lower_load(m);
                    }
                }
                Stmt::Store(m) => {
                    for _ in 0..m.count {
                        self.lower_store(m);
                    }
                }
                Stmt::SyncThreads => {
                    self.cur
                        .push(Instr::new(Opcode::new(OpKind::Bar, Ty::U32), None, vec![]));
                }
                Stmt::Loop(l) => self.lower_loop(l, freq),
                Stmt::If(b) => self.lower_if(b, freq),
            }
        }

        fn lower_alu(&mut self, op: AluOp) {
            let fast = self.opts.fast_math;
            match op {
                AluOp::AddF32 => {
                    let (a, b) = (self.pick(), self.pick());
                    self.def(OpKind::Add, Ty::F32, vec![Operand::Reg(a), Operand::Reg(b)]);
                }
                AluOp::MulF32 => {
                    let (a, b) = (self.pick(), self.pick());
                    self.def(OpKind::Mul, Ty::F32, vec![Operand::Reg(a), Operand::Reg(b)]);
                }
                AluOp::FmaF32 => {
                    let (a, b, c) = (self.pick(), self.pick(), self.pick());
                    self.def(
                        OpKind::Fma,
                        Ty::F32,
                        vec![Operand::Reg(a), Operand::Reg(b), Operand::Reg(c)],
                    );
                }
                AluOp::AddF64 => {
                    let (a, b) = (self.pick(), self.pick());
                    self.def(OpKind::Add, Ty::F64, vec![Operand::Reg(a), Operand::Reg(b)]);
                }
                AluOp::MulF64 => {
                    let (a, b) = (self.pick(), self.pick());
                    self.def(OpKind::Mul, Ty::F64, vec![Operand::Reg(a), Operand::Reg(b)]);
                }
                AluOp::FmaF64 => {
                    let (a, b, c) = (self.pick(), self.pick(), self.pick());
                    self.def(
                        OpKind::Fma,
                        Ty::F64,
                        vec![Operand::Reg(a), Operand::Reg(b), Operand::Reg(c)],
                    );
                }
                AluOp::DivF32 => {
                    let d = self.pick();
                    let r = self.def(OpKind::Rcp, Ty::F32, vec![Operand::Reg(d)]);
                    let n = self.pick();
                    let q =
                        self.def(OpKind::Mul, Ty::F32, vec![Operand::Reg(n), Operand::Reg(r)]);
                    if !fast {
                        let e = self.def(OpKind::Fma, Ty::F32, vec![
                            Operand::Reg(q),
                            Operand::Reg(d),
                            Operand::Reg(n),
                        ]);
                        self.def(OpKind::Fma, Ty::F32, vec![
                            Operand::Reg(e),
                            Operand::Reg(r),
                            Operand::Reg(q),
                        ]);
                    }
                }
                AluOp::SqrtF32 => {
                    let a = self.pick();
                    let s = self.def(OpKind::Sqrt, Ty::F32, vec![Operand::Reg(a)]);
                    if !fast {
                        let h = self.def(OpKind::Mul, Ty::F32, vec![
                            Operand::Reg(s),
                            Operand::FImm(0.5),
                        ]);
                        self.def(OpKind::Fma, Ty::F32, vec![
                            Operand::Reg(h),
                            Operand::Reg(s),
                            Operand::Reg(a),
                        ]);
                    }
                }
                AluOp::ExpF32 => {
                    let a = self.pick();
                    let scaled = self.def(OpKind::Mul, Ty::F32, vec![
                        Operand::Reg(a),
                        Operand::FImm(std::f64::consts::LOG2_E),
                    ]);
                    let e = self.def(OpKind::Ex2, Ty::F32, vec![Operand::Reg(scaled)]);
                    if !fast {
                        let f = self.def(OpKind::Fma, Ty::F32, vec![
                            Operand::Reg(e),
                            Operand::Reg(scaled),
                            Operand::Reg(a),
                        ]);
                        self.def(OpKind::Fma, Ty::F32, vec![
                            Operand::Reg(f),
                            Operand::Reg(e),
                            Operand::Reg(a),
                        ]);
                    }
                }
                AluOp::LogF32 => {
                    let a = self.pick();
                    let l = self.def(OpKind::Lg2, Ty::F32, vec![Operand::Reg(a)]);
                    self.def(OpKind::Mul, Ty::F32, vec![
                        Operand::Reg(l),
                        Operand::FImm(std::f64::consts::LN_2),
                    ]);
                    if !fast {
                        let p = self.pick();
                        self.def(OpKind::Fma, Ty::F32, vec![
                            Operand::Reg(l),
                            Operand::Reg(p),
                            Operand::Reg(a),
                        ]);
                    }
                }
                AluOp::SinCosF32 => {
                    let a = self.pick();
                    if !fast {
                        let k = self.def(OpKind::Fma, Ty::F32, vec![
                            Operand::Reg(a),
                            Operand::FImm(std::f64::consts::FRAC_1_PI),
                            Operand::FImm(0.5),
                        ]);
                        let r = self.def(OpKind::Fma, Ty::F32, vec![
                            Operand::Reg(k),
                            Operand::FImm(-std::f64::consts::PI),
                            Operand::Reg(a),
                        ]);
                        self.def(OpKind::Sin, Ty::F32, vec![Operand::Reg(r)]);
                    } else {
                        self.def(OpKind::Sin, Ty::F32, vec![Operand::Reg(a)]);
                    }
                }
                AluOp::CmpF32 => {
                    let (a, b) = (self.pick(), self.pick());
                    let p = self.fresh_pred();
                    let mut i = Instr::new(
                        Opcode::new(OpKind::Setp(CmpOp::Lt), Ty::F32),
                        None,
                        vec![Operand::Reg(a), Operand::Reg(b)],
                    );
                    i.dst_pred = Some(p);
                    self.cur.push(i);
                }
                AluOp::MinMaxF32 => {
                    let (a, b) = (self.pick(), self.pick());
                    self.def(OpKind::Min, Ty::F32, vec![Operand::Reg(a), Operand::Reg(b)]);
                }
                AluOp::AddI32 => {
                    let a = self.pick();
                    self.def(OpKind::Add, Ty::S32, vec![Operand::Reg(a), Operand::Imm(1)]);
                }
                AluOp::MulI32 => {
                    let (a, b) = (self.pick(), self.pick());
                    if self.family >= Family::Maxwell {
                        let lo =
                            self.def(OpKind::Mul, Ty::S32, vec![Operand::Reg(a), Operand::Reg(b)]);
                        let sh = self.def(OpKind::Shift, Ty::U32, vec![
                            Operand::Reg(lo),
                            Operand::Imm(16),
                        ]);
                        self.def(OpKind::Add, Ty::S32, vec![
                            Operand::Reg(sh),
                            Operand::Reg(lo),
                        ]);
                    } else {
                        self.def(OpKind::Mul, Ty::S32, vec![Operand::Reg(a), Operand::Reg(b)]);
                    }
                }
                AluOp::CmpI32 => {
                    let (a, b) = (self.pick(), self.pick());
                    let p = self.fresh_pred();
                    let mut i = Instr::new(
                        Opcode::new(OpKind::Setp(CmpOp::Lt), Ty::S32),
                        None,
                        vec![Operand::Reg(a), Operand::Reg(b)],
                    );
                    i.dst_pred = Some(p);
                    self.cur.push(i);
                }
                AluOp::BitI32 => {
                    let a = self.pick();
                    self.def(OpKind::Logic, Ty::U32, vec![Operand::Reg(a), Operand::Imm(0xff)]);
                }
                AluOp::ShuffleF32 => {
                    let a = self.pick();
                    if self.family == Family::Fermi {
                        let addr = self.def(OpKind::Add, Ty::S32, vec![
                            Operand::Reg(a),
                            Operand::Imm(4),
                        ]);
                        let st = Instr::new(
                            Opcode::new(OpKind::St(MemSpace::Shared), Ty::F32),
                            None,
                            vec![Operand::Reg(addr), Operand::Reg(a)],
                        )
                        .with_mem(AccessPattern::Coalesced);
                        self.cur.push(st);
                        let dst = self.fresh_reg();
                        let ld = Instr::new(
                            Opcode::new(OpKind::Ld(MemSpace::Shared), Ty::F32),
                            Some(dst),
                            vec![Operand::Reg(addr)],
                        )
                        .with_mem(AccessPattern::Coalesced);
                        self.cur.push(ld);
                        self.push_window(dst);
                    } else {
                        self.def(OpKind::Logic, Ty::U32, vec![
                            Operand::Reg(a),
                            Operand::Imm(0xff),
                        ]);
                    }
                }
                AluOp::CvtI32F32 => {
                    let a = self.pick();
                    self.def(OpKind::Cvt(Ty::S32), Ty::F32, vec![Operand::Reg(a)]);
                }
                AluOp::Cvt64 => {
                    let a = self.pick();
                    self.def(OpKind::Cvt(Ty::F32), Ty::F64, vec![Operand::Reg(a)]);
                }
            }
        }

        fn addr_ty(elem_bytes: u8) -> Ty {
            if elem_bytes == 8 {
                Ty::F64
            } else {
                Ty::F32
            }
        }

        fn lower_address(&mut self, m: &MemStmt) -> Reg {
            match m.pattern {
                AccessPattern::Coalesced => {
                    let base = self.pick();
                    self.def(OpKind::Add, Ty::S32, vec![
                        Operand::Reg(base),
                        Operand::Imm(i64::from(m.elem_bytes)),
                    ])
                }
                AccessPattern::Strided(stride) => {
                    let idx = self.pick();
                    let scaled = self.def(OpKind::Mul, Ty::S32, vec![
                        Operand::Reg(idx),
                        Operand::Imm(i64::from(stride)),
                    ]);
                    self.def(OpKind::Add, Ty::S32, vec![
                        Operand::Reg(scaled),
                        Operand::Imm(i64::from(m.elem_bytes)),
                    ])
                }
                AccessPattern::Random => {
                    let idx = self.pick();
                    let hashed = self.def(OpKind::Logic, Ty::U32, vec![
                        Operand::Reg(idx),
                        Operand::Imm(0x9e37),
                    ]);
                    self.def(OpKind::Add, Ty::S32, vec![
                        Operand::Reg(hashed),
                        Operand::Imm(i64::from(m.elem_bytes)),
                    ])
                }
                AccessPattern::Broadcast => {
                    self.def(OpKind::Mov, Ty::S32, vec![Operand::Param(0)])
                }
            }
        }

        fn lower_load(&mut self, m: &MemStmt) {
            let addr = self.lower_address(m);
            let ty = Self::addr_ty(m.elem_bytes);
            let dst = self.fresh_reg();
            let instr = Instr::new(
                Opcode::new(OpKind::Ld(m.space), ty),
                Some(dst),
                vec![Operand::Reg(addr)],
            )
            .with_mem(m.pattern);
            self.cur.push(instr);
            self.push_window(dst);
        }

        fn lower_store(&mut self, m: &MemStmt) {
            let addr = self.lower_address(m);
            let val = self.pick();
            let ty = Self::addr_ty(m.elem_bytes);
            let instr = Instr::new(
                Opcode::new(OpKind::St(m.space), ty),
                None,
                vec![Operand::Reg(addr), Operand::Reg(val)],
            )
            .with_mem(m.pattern);
            self.cur.push(instr);
        }

        fn lower_loop(&mut self, l: &crate::ast::Loop, freq: &FreqExpr) {
            let induction = self.def(OpKind::Mov, Ty::S32, vec![Operand::Imm(0)]);
            if matches!(l.trip, TripCount::GridStride(_) | TripCount::BlockShare(_)) {
                let ntid =
                    self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::NTidX)]);
                let ncta =
                    self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::NCtaIdX)]);
                self.def(OpKind::Mul, Ty::S32, vec![Operand::Reg(ntid), Operand::Reg(ncta)]);
            }

            let body_label = self.fresh_label("loop");
            let body_freq = freq.clone().times(FreqExpr::Trip(l.trip));
            let body_id = self.upcoming_id(1);
            self.seal_and_start(Terminator::Jump(body_id), body_label, body_freq.clone());

            self.lower_stmts(&l.body, &body_freq);

            let next =
                self.def(OpKind::Add, Ty::S32, vec![Operand::Reg(induction), Operand::Imm(1)]);
            let p = self.fresh_pred();
            let mut setp = Instr::new(
                Opcode::new(OpKind::Setp(CmpOp::Lt), Ty::S32),
                None,
                vec![Operand::Reg(next), Operand::Imm(1 << 20)],
            );
            setp.dst_pred = Some(p);
            self.cur.push(setp);

            let exit_label = self.fresh_label("after");
            let exit_id = self.upcoming_id(1);
            self.seal_and_start(
                Terminator::LoopBack { target: body_id, exit: exit_id, trip: l.trip },
                exit_label,
                freq.clone(),
            );
        }

        fn lower_if(&mut self, b: &crate::ast::Branch, freq: &FreqExpr) {
            use crate::ast::DivergenceKind;
            let lhs = if b.divergence == DivergenceKind::ThreadDependent {
                self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::TidX)])
            } else {
                self.def(OpKind::Mov, Ty::U32, vec![Operand::Special(SpecialReg::CtaIdX)])
            };
            let p = self.fresh_pred();
            let mut setp = Instr::new(
                Opcode::new(OpKind::Setp(CmpOp::Lt), Ty::S32),
                None,
                vec![Operand::Reg(lhs), Operand::Param(1)],
            );
            setp.dst_pred = Some(p);
            self.cur.push(setp);

            let divergent = b.divergence == DivergenceKind::ThreadDependent;
            let then_label = self.fresh_label("then");
            let frac = |p: f64| {
                if divergent {
                    FreqExpr::DivFraction(p)
                } else {
                    FreqExpr::Fraction(p)
                }
            };
            let then_freq = freq.clone().times(frac(b.taken_fraction));
            let else_freq = freq.clone().times(frac(1.0 - b.taken_fraction));
            let has_else = !b.else_body.is_empty();

            let cond_block_index = self.blocks.len();
            self.seal_and_start(Terminator::Ret, then_label, then_freq);
            let then_id = BlockId(cond_block_index as u32 + 1);
            let active_freq = self.cur_freq.clone();
            self.lower_stmts(&b.then_body, &active_freq);
            let then_end_index = self.blocks.len();
            let next_label = self.fresh_label(if has_else { "else" } else { "merge" });
            self.seal_and_start(
                Terminator::Ret,
                next_label,
                if has_else { else_freq.clone() } else { freq.clone() },
            );

            if has_else {
                let else_id = BlockId(then_end_index as u32 + 1);
                let active_freq = self.cur_freq.clone();
                self.lower_stmts(&b.else_body, &active_freq);
                let else_end_index = self.blocks.len();
                let merge_label = self.fresh_label("merge");
                self.seal_and_start(Terminator::Ret, merge_label, freq.clone());
                let merge_id = BlockId(else_end_index as u32 + 1);
                self.blocks[cond_block_index].term = Terminator::CondBranch {
                    pred: p,
                    taken: then_id,
                    fallthrough: else_id,
                    divergent,
                    taken_fraction: b.taken_fraction,
                };
                self.blocks[then_end_index].term = Terminator::Jump(merge_id);
                self.blocks[else_end_index].term = Terminator::Jump(merge_id);
            } else {
                let merge_id = BlockId(then_end_index as u32 + 1);
                self.blocks[cond_block_index].term = Terminator::CondBranch {
                    pred: p,
                    taken: then_id,
                    fallthrough: merge_id,
                    divergent,
                    taken_fraction: b.taken_fraction,
                };
                self.blocks[then_end_index].term = Terminator::Jump(merge_id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Branch, DivergenceKind, Loop, MemSpace, SizeExpr};
    use oriole_arch::OpClass;

    fn count_class(p: &Program, class: OpClass) -> usize {
        p.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| i.opcode.op_class() == class)
            .count()
    }

    #[test]
    fn straight_line_kernel_single_block_plus_exit() {
        let mut k = KernelAst::new("flat");
        k.body = vec![Stmt::ops(AluOp::FmaF32, 3)];
        let p = lower(&k, Family::Kepler, LowerOptions::default());
        assert!(p.validate().is_empty());
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(count_class(&p, OpClass::FpIns32), 3);
    }

    #[test]
    fn loop_produces_three_blocks_with_trip_frequency() {
        let mut k = KernelAst::new("looped");
        k.body = vec![Stmt::Loop(Loop {
            trip: TripCount::Size(SizeExpr::N),
            unrollable: true,
            body: vec![Stmt::ops(AluOp::FmaF32, 1)],
        })];
        let p = lower(&k, Family::Kepler, LowerOptions::default());
        assert!(p.validate().is_empty());
        // entry, loop body, after.
        assert_eq!(p.blocks.len(), 3);
        let body = &p.blocks[1];
        assert!(matches!(body.term, Terminator::LoopBack { .. }));
        // Body executes N times per thread.
        assert_eq!(body.freq.eval(128, 1, 1), 128.0);
        // After-block back to once.
        assert_eq!(p.blocks[2].freq.eval(128, 1, 1), 1.0);
        // The latch carries loop overhead: at least add + setp.
        assert!(count_class(&p, OpClass::PredIns) >= 1);
    }

    #[test]
    fn if_without_else_shapes_cfg() {
        let mut k = KernelAst::new("guarded");
        k.body = vec![Stmt::If(Branch {
            divergence: DivergenceKind::ThreadDependent,
            taken_fraction: 0.25,
            then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
            else_body: vec![],
        })];
        let p = lower(&k, Family::Maxwell, LowerOptions::default());
        assert!(p.validate().is_empty());
        // entry(cond), then, merge.
        assert_eq!(p.blocks.len(), 3);
        match &p.blocks[0].term {
            Terminator::CondBranch { divergent, taken_fraction, taken, fallthrough, .. } => {
                assert!(*divergent);
                assert_eq!(*taken_fraction, 0.25);
                assert_eq!(*taken, BlockId(1));
                assert_eq!(*fallthrough, BlockId(2));
            }
            other => panic!("expected CondBranch, got {other:?}"),
        }
        // Then-block frequency respects the fraction.
        assert!((p.blocks[1].freq.eval(1, 1, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn if_with_else_emits_both_sides() {
        let mut k = KernelAst::new("two_sided");
        k.body = vec![Stmt::If(Branch {
            divergence: DivergenceKind::Uniform,
            taken_fraction: 0.5,
            then_body: vec![Stmt::ops(AluOp::AddF32, 2)],
            else_body: vec![Stmt::ops(AluOp::MulF32, 3)],
        })];
        let p = lower(&k, Family::Fermi, LowerOptions::default());
        assert!(p.validate().is_empty());
        // entry, then, else, merge.
        assert_eq!(p.blocks.len(), 4);
        match &p.blocks[0].term {
            Terminator::CondBranch { divergent, .. } => assert!(!*divergent),
            other => panic!("expected CondBranch, got {other:?}"),
        }
        // Both arms rejoin at the merge block.
        assert_eq!(p.blocks[1].term, Terminator::Jump(BlockId(3)));
        assert_eq!(p.blocks[2].term, Terminator::Jump(BlockId(3)));
    }

    #[test]
    fn fast_math_shortens_divide() {
        let mut k = KernelAst::new("div");
        k.body = vec![Stmt::ops(AluOp::DivF32, 1)];
        let full = lower(&k, Family::Kepler, LowerOptions { fast_math: false });
        let fast = lower(&k, Family::Kepler, LowerOptions { fast_math: true });
        assert!(
            full.static_len() > fast.static_len(),
            "full {} vs fast {}",
            full.static_len(),
            fast.static_len()
        );
        // Both contain exactly one reciprocal (the SFU op).
        assert_eq!(count_class(&full, OpClass::LogSinCos), 1);
        assert_eq!(count_class(&fast, OpClass::LogSinCos), 1);
    }

    #[test]
    fn fast_math_shortens_sin_and_exp() {
        let mut k = KernelAst::new("sfu");
        k.body = vec![Stmt::ops(AluOp::SinCosF32, 1), Stmt::ops(AluOp::ExpF32, 1)];
        let full = lower(&k, Family::Pascal, LowerOptions { fast_math: false });
        let fast = lower(&k, Family::Pascal, LowerOptions { fast_math: true });
        assert!(full.static_len() > fast.static_len());
    }

    #[test]
    fn loads_carry_pattern_annotations() {
        let mut k = KernelAst::new("mem");
        k.body = vec![
            Stmt::load(MemSpace::Global, AccessPattern::Strided(64), 1),
            Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
        ];
        let p = lower(&k, Family::Kepler, LowerOptions::default());
        let loads: Vec<_> = p
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i.opcode.kind, OpKind::Ld(_) | OpKind::St(_)))
            .collect();
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].mem.unwrap().pattern, AccessPattern::Strided(64));
        assert_eq!(loads[1].mem.unwrap().pattern, AccessPattern::Coalesced);
        // Strided access costs extra address arithmetic (mul + add).
        assert!(count_class(&p, OpClass::IntAdd32) >= 3);
    }

    #[test]
    fn barrier_lowers_to_bar_sync() {
        let mut k = KernelAst::new("sync");
        k.body = vec![Stmt::SyncThreads];
        let p = lower(&k, Family::Kepler, LowerOptions::default());
        let bars = p
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| i.opcode.kind == OpKind::Bar)
            .count();
        assert_eq!(bars, 1);
    }

    #[test]
    fn nested_loops_multiply_frequencies() {
        let mut k = KernelAst::new("nest");
        k.body = vec![Stmt::Loop(Loop {
            trip: TripCount::GridStride(SizeExpr::N2),
            unrollable: false,
            body: vec![Stmt::Loop(Loop {
                trip: TripCount::Size(SizeExpr::N),
                unrollable: true,
                body: vec![Stmt::ops(AluOp::FmaF32, 1)],
            })],
        })];
        let p = lower(&k, Family::Kepler, LowerOptions::default());
        assert!(p.validate().is_empty());
        // Find the innermost body: the block with the FMA.
        let inner = p
            .blocks
            .iter()
            .find(|b| b.instrs.iter().any(|i| i.opcode.kind == OpKind::Fma))
            .unwrap();
        // N=64, 64·64=4096 grid threads → outer trip 1, inner 64.
        assert_eq!(inner.freq.eval(64, 64, 64), 64.0);
        // N=64, 128 threads → outer 32, inner 64 → 2048.
        assert_eq!(inner.freq.eval(64, 128, 1), 2048.0);
    }

    #[test]
    fn deterministic_lowering() {
        let mut k = KernelAst::new("det");
        k.body = vec![
            Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 2),
            Stmt::ops(AluOp::FmaF32, 4),
            Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
        ];
        let a = lower(&k, Family::Kepler, LowerOptions::default());
        let b = lower(&k, Family::Kepler, LowerOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn pending_label_materialization_matches_eager_format() {
        for (stem, eager) in [
            (LabelStem::Loop, "loop"),
            (LabelStem::After, "after"),
            (LabelStem::Then, "then"),
            (LabelStem::Else, "else"),
            (LabelStem::Merge, "merge"),
        ] {
            for seq in [0u32, 1, 9, 10, 123, u32::MAX] {
                assert_eq!(
                    PendingLabel { stem, seq }.materialize(),
                    format!("{eager}{seq}"),
                );
            }
        }
        assert_eq!(PendingLabel::ENTRY.materialize(), "entry");
    }

    #[test]
    fn interned_labels_match_string_oracle() {
        // Cover every block shape in one kernel: loops (plain and
        // grid-stride), one-armed and two-armed ifs, nesting.
        let mut k = KernelAst::new("oracle");
        k.body = vec![
            Stmt::ops(AluOp::FmaF32, 2),
            Stmt::Loop(Loop {
                trip: TripCount::GridStride(SizeExpr::N2),
                unrollable: false,
                body: vec![Stmt::If(Branch {
                    divergence: DivergenceKind::ThreadDependent,
                    taken_fraction: 0.25,
                    then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
                    else_body: vec![Stmt::ops(AluOp::MulF32, 2)],
                })],
            }),
            Stmt::If(Branch {
                divergence: DivergenceKind::Uniform,
                taken_fraction: 0.5,
                then_body: vec![Stmt::ops(AluOp::DivF32, 1)],
                else_body: vec![],
            }),
        ];
        for fast_math in [false, true] {
            let opts = LowerOptions { fast_math };
            for family in [Family::Fermi, Family::Kepler, Family::Maxwell, Family::Pascal] {
                assert_eq!(lower(&k, family, opts), oracle::lower(&k, family, opts));
            }
        }
    }

    #[test]
    fn lower_indexed_matches_separate_build() {
        let mut k = KernelAst::new("fused");
        k.body = vec![
            Stmt::Loop(Loop {
                trip: TripCount::Size(SizeExpr::N),
                unrollable: true,
                body: vec![Stmt::ops(AluOp::FmaF32, 1)],
            }),
            Stmt::If(Branch {
                divergence: DivergenceKind::ThreadDependent,
                taken_fraction: 0.3,
                then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
                else_body: vec![Stmt::ops(AluOp::MulF32, 1)],
            }),
        ];
        let opts = LowerOptions::default();
        let (program, fused) = lower_indexed(&k, Family::Kepler, opts);
        assert_eq!(program, lower(&k, Family::Kepler, opts));
        assert_eq!(fused, ProgramIndex::build(&program));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ast::{Branch, DivergenceKind, Loop, SizeExpr};
    use proptest::prelude::*;

    fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
        let alu = prop_oneof![
            Just(AluOp::AddF32),
            Just(AluOp::MulF32),
            Just(AluOp::FmaF32),
            Just(AluOp::DivF32),
            Just(AluOp::SqrtF32),
            Just(AluOp::SinCosF32),
            Just(AluOp::MulI32),
            Just(AluOp::ShuffleF32),
            Just(AluOp::CvtI32F32),
        ];
        let space = prop_oneof![
            Just(MemSpace::Global),
            Just(MemSpace::Shared),
            Just(MemSpace::Constant),
        ];
        let pattern = prop_oneof![
            Just(AccessPattern::Coalesced),
            Just(AccessPattern::Broadcast),
            Just(AccessPattern::Random),
            (1u32..=64).prop_map(AccessPattern::Strided),
        ];
        let leaf = prop_oneof![
            (alu, 1u32..4).prop_map(|(op, count)| Stmt::ops(op, count)),
            (space.clone(), pattern.clone(), 1u32..3).prop_map(|(s, p, c)| Stmt::load(s, p, c)),
            (space, pattern, 1u32..3).prop_map(|(s, p, c)| {
                Stmt::Store(MemStmt { space: s, pattern: p, elem_bytes: 4, count: c })
            }),
            Just(Stmt::SyncThreads),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        let trip = prop_oneof![
            (1u64..=64).prop_map(TripCount::Const),
            (0u8..=2).prop_map(|p| TripCount::Size(SizeExpr::new(1.0, p))),
            (1u8..=2).prop_map(|p| TripCount::GridStride(SizeExpr::new(1.0, p))),
        ];
        let inner = arb_stmt(depth - 1);
        prop_oneof![
            4 => leaf,
            2 => (trip, prop::collection::vec(inner.clone(), 1..4), any::<bool>()).prop_map(
                |(trip, body, unrollable)| Stmt::Loop(Loop { trip, body, unrollable })
            ),
            1 => (
                prop_oneof![Just(DivergenceKind::Uniform), Just(DivergenceKind::ThreadDependent)],
                0.0f64..=1.0,
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner, 0..3),
            )
                .prop_map(|(divergence, taken_fraction, then_body, else_body)| {
                    Stmt::If(Branch { divergence, taken_fraction, then_body, else_body })
                }),
        ]
        .boxed()
    }

    fn arb_kernel() -> impl Strategy<Value = KernelAst> {
        prop::collection::vec(arb_stmt(2), 1..5).prop_map(|body| {
            let mut k = KernelAst::new("lower_prop");
            k.body = body;
            k
        })
    }

    fn arb_family() -> impl Strategy<Value = Family> {
        prop_oneof![
            Just(Family::Fermi),
            Just(Family::Kepler),
            Just(Family::Maxwell),
            Just(Family::Pascal),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The interned-label arena lowerer is bit-identical to the
        /// retained string-label oracle across random ASTs × family ×
        /// fast-math.
        #[test]
        fn interned_lowering_bit_identical_to_oracle(
            ast in arb_kernel(),
            family in arb_family(),
            fast_math in any::<bool>(),
        ) {
            let opts = LowerOptions { fast_math };
            prop_assert_eq!(lower(&ast, family, opts), oracle::lower(&ast, family, opts));
        }

        /// The fused lowering+index walk yields the same program and the
        /// same index as the separate post-pass build.
        #[test]
        fn fused_index_bit_identical_to_post_pass(
            ast in arb_kernel(),
            family in arb_family(),
            fast_math in any::<bool>(),
        ) {
            let opts = LowerOptions { fast_math };
            let (program, fused) = lower_indexed(&ast, family, opts);
            prop_assert_eq!(&program, &lower(&ast, family, opts));
            prop_assert_eq!(fused, ProgramIndex::build(&program));
        }
    }
}
