//! Structured kernel AST.
//!
//! The AST is the representation Orio-style source transformations operate
//! on (unrolling, fast-math substitution) *before* lowering to the linear
//! ISA. It is resource-faithful: statements record which operation classes
//! execute how many times, which address spaces are touched with which
//! access patterns, and how control flow depends on thread identity — but
//! no data values.
//!
//! Trip counts are symbolic ([`TripCount`]) so one AST describes the
//! kernel for *every* problem size and launch geometry; concrete counts
//! are produced only when a [`LaunchGeometry`](crate::count::LaunchGeometry)
//! is supplied.

use std::fmt;

/// Polynomial-in-`N` work amount: `coeff * N^power` items.
///
/// Example: a dense matrix–vector product touches `N²` matrix elements,
/// expressed as `SizeExpr::new(1.0, 2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeExpr {
    /// Multiplicative coefficient.
    pub coeff: f64,
    /// Exponent of the problem size `N`.
    pub power: u8,
}

impl SizeExpr {
    /// Creates `coeff * N^power`.
    pub const fn new(coeff: f64, power: u8) -> Self {
        Self { coeff, power }
    }

    /// `N` itself.
    pub const N: SizeExpr = SizeExpr::new(1.0, 1);
    /// `N²`.
    pub const N2: SizeExpr = SizeExpr::new(1.0, 2);
    /// `N³`.
    pub const N3: SizeExpr = SizeExpr::new(1.0, 3);

    /// Evaluates at a concrete problem size.
    pub fn eval(self, n: u64) -> f64 {
        self.coeff * (n as f64).powi(i32::from(self.power))
    }
}

impl fmt::Display for SizeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}*N^{}", self.coeff, self.power)
    }
}

/// Symbolic loop trip count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TripCount {
    /// A fixed number of iterations.
    Const(u64),
    /// `size(N)` iterations per thread (e.g. the inner dot-product loop of
    /// a matvec row runs `N` times regardless of launch geometry).
    Size(SizeExpr),
    /// Grid-stride loop: `ceil(items(N) / (TC * BC))` iterations per
    /// thread. This is how Orio-generated CUDA loops distribute `items`
    /// work items over `TC*BC` threads.
    GridStride(SizeExpr),
    /// Block-cooperative loop: `ceil(items(N) / TC)` iterations per
    /// thread — every block processes all `items` with its `TC` threads
    /// (the shared-memory tile-fill idiom). Per-thread work falls with
    /// block size; whole-grid work is `items × BC`.
    BlockShare(SizeExpr),
}

impl TripCount {
    /// Concrete per-thread iteration count for a launch geometry, on the
    /// *critical path*: the busiest thread's count. Grid-stride loops
    /// round up — some thread always executes `ceil(items/threads)`
    /// iterations, and a warp is only as fast as its slowest lane. Timing
    /// models use this.
    pub fn eval(self, n: u64, tc: u32, bc: u32) -> f64 {
        match self {
            TripCount::Const(c) => c as f64,
            TripCount::Size(s) => s.eval(n),
            TripCount::GridStride(s) => {
                let threads = f64::from(tc) * f64::from(bc);
                (s.eval(n) / threads).ceil().max(0.0)
            }
            TripCount::BlockShare(s) => (s.eval(n) / f64::from(tc)).ceil().max(0.0),
        }
    }

    /// Expected per-thread iteration count, *averaged over all threads*.
    /// When the grid has more threads than work items, surplus threads
    /// fail the range guard immediately and execute the body zero times;
    /// the average is exactly `items / threads`. Instruction-count
    /// estimators use this so total predicted work is geometry-invariant.
    pub fn eval_expected(self, n: u64, tc: u32, bc: u32) -> f64 {
        match self {
            TripCount::Const(c) => c as f64,
            TripCount::Size(s) => s.eval(n),
            TripCount::GridStride(s) => {
                let threads = f64::from(tc) * f64::from(bc);
                (s.eval(n) / threads).max(0.0)
            }
            TripCount::BlockShare(s) => (s.eval(n) / f64::from(tc)).max(0.0),
        }
    }
}

/// Memory address space of a [`MemStmt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device global memory.
    Global,
    /// Per-block shared memory.
    Shared,
    /// Per-thread local memory (register spills live here).
    Local,
    /// Constant memory.
    Constant,
    /// Texture memory.
    Texture,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
            MemSpace::Constant => "const",
            MemSpace::Texture => "tex",
        };
        f.write_str(s)
    }
}

/// How consecutive threads of a warp address memory — the property that
/// determines coalescing, and with it the effective bandwidth the
/// simulator grants the access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Thread `i` touches element `base + i`: one transaction per warp.
    Coalesced,
    /// Thread `i` touches `base + i*stride` (in elements). A column walk
    /// through a row-major matrix — the ATAX/BiCG transpose access — is
    /// `Strided(N)`, requiring up to 32 transactions per warp.
    Strided(u32),
    /// Effectively random addressing; worst-case transactions.
    Random,
    /// All threads read the same address (broadcast — e.g. the `x[j]`
    /// vector element in a row-per-thread matvec).
    Broadcast,
}

impl AccessPattern {
    /// Memory transactions per warp-wide access, out of a worst case of
    /// 32 (one per lane). The simulator converts this into effective
    /// bandwidth; the analyzer reports it as a coalescing diagnostic.
    pub fn transactions_per_warp(self) -> u32 {
        match self {
            AccessPattern::Coalesced => 1,
            AccessPattern::Broadcast => 1,
            AccessPattern::Strided(stride) => {
                if stride == 0 {
                    1
                } else {
                    // Each 128-byte segment serves 32/stride lanes for
                    // 4-byte elements; saturates at one transaction/lane.
                    stride.min(32)
                }
            }
            AccessPattern::Random => 32,
        }
    }
}

/// Arithmetic operation kinds available to AST statements.
///
/// These are deliberately at CUDA-source granularity; lowering maps them
/// to one or more ISA instructions (e.g. [`AluOp::DivF32`] becomes a
/// reciprocal plus a multiply when fast-math is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// 32-bit float add/subtract.
    AddF32,
    /// 32-bit float multiply.
    MulF32,
    /// Fused multiply-add, 32-bit.
    FmaF32,
    /// 32-bit float divide.
    DivF32,
    /// 64-bit float add/subtract.
    AddF64,
    /// 64-bit float multiply.
    MulF64,
    /// Fused multiply-add, 64-bit.
    FmaF64,
    /// 32-bit float square root.
    SqrtF32,
    /// 32-bit float exponential.
    ExpF32,
    /// 32-bit float logarithm.
    LogF32,
    /// 32-bit float sine/cosine.
    SinCosF32,
    /// Float compare.
    CmpF32,
    /// Float min/max.
    MinMaxF32,
    /// 32-bit integer add/subtract.
    AddI32,
    /// 32-bit integer multiply.
    MulI32,
    /// Integer compare.
    CmpI32,
    /// Bitwise / shift operations.
    BitI32,
    /// Warp lane exchange (`__shfl_down`-style). Kepler and newer have a
    /// shuffle datapath; Fermi lowers it to a shared-memory round-trip.
    ShuffleF32,
    /// int ↔ float conversion (32-bit).
    CvtI32F32,
    /// 32 ↔ 64-bit conversions.
    Cvt64,
}

/// A run of `count` arithmetic operations of the same kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpStmt {
    /// Operation kind.
    pub op: AluOp,
    /// How many back-to-back operations this statement represents.
    pub count: u32,
}

/// A run of `count` memory accesses with a common space and pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemStmt {
    /// Address space accessed.
    pub space: MemSpace,
    /// Warp-level access pattern.
    pub pattern: AccessPattern,
    /// Element size in bytes (4 for f32, 8 for f64).
    pub elem_bytes: u8,
    /// Number of accesses.
    pub count: u32,
}

/// Whether a branch condition can disagree within a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// All threads of a warp take the same side (e.g. condition on
    /// `blockIdx` or a kernel parameter).
    Uniform,
    /// The condition depends on `threadIdx` / data: lanes may split and
    /// the warp serializes both sides (the paper's Fig. 1 problem).
    ThreadDependent,
}

/// A structured conditional.
#[derive(Debug, Clone, PartialEq)]
pub struct Branch {
    /// Uniform or thread-dependent condition.
    pub divergence: DivergenceKind,
    /// Fraction of threads (probability per thread) taking the
    /// then-branch.
    pub taken_fraction: f64,
    /// Statements executed when taken.
    pub then_body: Vec<Stmt>,
    /// Statements executed otherwise (possibly empty).
    pub else_body: Vec<Stmt>,
}

/// A structured counted loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Symbolic iteration count.
    pub trip: TripCount,
    /// Loop body.
    pub body: Vec<Stmt>,
    /// Whether the unrolling transformation may legally unroll this loop
    /// (innermost loops without barriers, in our kernels).
    pub unrollable: bool,
}

/// A kernel-body statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Arithmetic operations.
    Op(OpStmt),
    /// Memory loads.
    Load(MemStmt),
    /// Memory stores.
    Store(MemStmt),
    /// A counted loop.
    Loop(Loop),
    /// A conditional.
    If(Branch),
    /// `__syncthreads()` — block-wide barrier.
    SyncThreads,
}

impl Stmt {
    /// Convenience constructor for `count` ALU operations.
    pub fn ops(op: AluOp, count: u32) -> Stmt {
        Stmt::Op(OpStmt { op, count })
    }

    /// Convenience constructor for `count` 4-byte loads.
    pub fn load(space: MemSpace, pattern: AccessPattern, count: u32) -> Stmt {
        Stmt::Load(MemStmt { space, pattern, elem_bytes: 4, count })
    }

    /// Convenience constructor for `count` 4-byte stores.
    pub fn store(space: MemSpace, pattern: AccessPattern, count: u32) -> Stmt {
        Stmt::Store(MemStmt { space, pattern, elem_bytes: 4, count })
    }
}

/// A `__shared__` array declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedDecl {
    /// Variable name (for reports).
    pub name: String,
    /// Element size in bytes.
    pub elem_bytes: u8,
    /// Number of elements **per thread of the block** when
    /// `scales_with_block` is true, otherwise total elements.
    pub elems: u32,
    /// Whether the allocation is sized proportionally to the block
    /// (`TC * elems` elements), the common tile idiom.
    pub scales_with_block: bool,
}

impl SharedDecl {
    /// Total bytes this declaration occupies for a block of `tc` threads.
    pub fn bytes_for_block(&self, tc: u32) -> u32 {
        let elems = if self.scales_with_block { self.elems * tc } else { self.elems };
        elems * u32::from(self.elem_bytes)
    }
}

/// Static shared-memory bytes a set of declarations occupies for a
/// block of `tc` threads — the single accounting rule shared by
/// [`KernelAst::shared_bytes`] and the compile back-end (which carries
/// the declarations without the rest of the AST).
pub fn shared_bytes_for_block(shared: &[SharedDecl], tc: u32) -> u32 {
    shared.iter().map(|d| d.bytes_for_block(tc)).sum()
}

/// A complete kernel in structured form.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAst {
    /// Kernel name (becomes the `.kernel` label in disassembly).
    pub name: String,
    /// Shared-memory declarations.
    pub shared: Vec<SharedDecl>,
    /// Kernel body.
    pub body: Vec<Stmt>,
}

impl KernelAst {
    /// Creates an empty kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), shared: Vec::new(), body: Vec::new() }
    }

    /// Static shared-memory bytes for a block of `tc` threads.
    pub fn shared_bytes(&self, tc: u32) -> u32 {
        shared_bytes_for_block(&self.shared, tc)
    }

    /// Walks every statement depth-first, calling `f` on each.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        fn walk<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
            for s in stmts {
                f(s);
                match s {
                    Stmt::Loop(l) => walk(&l.body, f),
                    Stmt::If(b) => {
                        walk(&b.then_body, f);
                        walk(&b.else_body, f);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.body, f);
    }

    /// Maximum loop-nest depth of the kernel body.
    pub fn loop_depth(&self) -> usize {
        fn depth(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Loop(l) => 1 + depth(&l.body),
                    Stmt::If(b) => depth(&b.then_body).max(depth(&b.else_body)),
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        depth(&self.body)
    }

    /// True if any statement under a thread-dependent branch exists —
    /// i.e. the kernel can diverge.
    pub fn has_divergence(&self) -> bool {
        let mut found = false;
        self.visit(&mut |s| {
            if let Stmt::If(b) = s {
                if b.divergence == DivergenceKind::ThreadDependent {
                    found = true;
                }
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_expr_eval() {
        assert_eq!(SizeExpr::N.eval(128), 128.0);
        assert_eq!(SizeExpr::N2.eval(10), 100.0);
        assert_eq!(SizeExpr::new(2.0, 1).eval(8), 16.0);
        assert_eq!(SizeExpr::new(0.5, 3).eval(4), 32.0);
    }

    #[test]
    fn trip_count_grid_stride_rounds_up() {
        // 100 items over 32 threads → 4 iterations (ceil(100/32)).
        let t = TripCount::GridStride(SizeExpr::new(100.0, 0));
        assert_eq!(t.eval(1, 32, 1), 4.0);
        // Exactly divisible.
        let t = TripCount::GridStride(SizeExpr::N2);
        assert_eq!(t.eval(64, 64, 64), 1.0);
        // More threads than work still costs one iteration (guarded body).
        assert_eq!(t.eval(8, 512, 128), 1.0);
    }

    #[test]
    fn trip_count_const_and_size() {
        assert_eq!(TripCount::Const(7).eval(999, 1, 1), 7.0);
        assert_eq!(TripCount::Size(SizeExpr::N).eval(256, 32, 4), 256.0);
    }

    #[test]
    fn access_pattern_transactions() {
        assert_eq!(AccessPattern::Coalesced.transactions_per_warp(), 1);
        assert_eq!(AccessPattern::Broadcast.transactions_per_warp(), 1);
        assert_eq!(AccessPattern::Strided(8).transactions_per_warp(), 8);
        assert_eq!(AccessPattern::Strided(512).transactions_per_warp(), 32);
        assert_eq!(AccessPattern::Strided(0).transactions_per_warp(), 1);
        assert_eq!(AccessPattern::Random.transactions_per_warp(), 32);
    }

    #[test]
    fn shared_decl_scaling() {
        let per_thread = SharedDecl {
            name: "tile".into(),
            elem_bytes: 4,
            elems: 2,
            scales_with_block: true,
        };
        assert_eq!(per_thread.bytes_for_block(256), 2048);
        let fixed = SharedDecl {
            name: "lut".into(),
            elem_bytes: 8,
            elems: 128,
            scales_with_block: false,
        };
        assert_eq!(fixed.bytes_for_block(256), 1024);
        assert_eq!(fixed.bytes_for_block(32), 1024);
    }

    fn sample_kernel() -> KernelAst {
        let mut k = KernelAst::new("sample");
        k.body = vec![
            Stmt::ops(AluOp::AddI32, 2),
            Stmt::Loop(Loop {
                trip: TripCount::GridStride(SizeExpr::N),
                unrollable: false,
                body: vec![
                    Stmt::Loop(Loop {
                        trip: TripCount::Size(SizeExpr::N),
                        unrollable: true,
                        body: vec![
                            Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
                            Stmt::ops(AluOp::FmaF32, 1),
                        ],
                    }),
                    Stmt::If(Branch {
                        divergence: DivergenceKind::ThreadDependent,
                        taken_fraction: 0.5,
                        then_body: vec![Stmt::store(
                            MemSpace::Global,
                            AccessPattern::Coalesced,
                            1,
                        )],
                        else_body: vec![],
                    }),
                ],
            }),
        ];
        k
    }

    #[test]
    fn visit_reaches_nested_statements() {
        let k = sample_kernel();
        let mut n = 0;
        k.visit(&mut |_| n += 1);
        // 2 top-level + inner loop + 2 loop-body + branch + store = 7.
        assert_eq!(n, 7);
    }

    #[test]
    fn loop_depth_and_divergence() {
        let k = sample_kernel();
        assert_eq!(k.loop_depth(), 2);
        assert!(k.has_divergence());
        let flat = KernelAst::new("flat");
        assert_eq!(flat.loop_depth(), 0);
        assert!(!flat.has_divergence());
    }

    #[test]
    fn shared_bytes_sums_declarations() {
        let mut k = KernelAst::new("s");
        k.shared.push(SharedDecl {
            name: "a".into(),
            elem_bytes: 4,
            elems: 1,
            scales_with_block: true,
        });
        k.shared.push(SharedDecl {
            name: "b".into(),
            elem_bytes: 4,
            elems: 64,
            scales_with_block: false,
        });
        assert_eq!(k.shared_bytes(128), 128 * 4 + 256);
    }
}
