//! The PTX-like instruction set.
//!
//! Opcodes are `(kind, type)` pairs, mirroring PTX mnemonics such as
//! `add.f32` or `ld.global.f32`. Every opcode maps to one of the paper's
//! Table II operation classes via [`Opcode::op_class`]; that mapping is
//! what connects disassembled programs to the throughput model.

use crate::ast::MemSpace;
use oriole_arch::OpClass;
use std::fmt;

/// Scalar value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// Signed 32-bit integer.
    S32,
    /// Unsigned 32-bit integer.
    U32,
    /// Signed 64-bit integer.
    S64,
    /// Unsigned 64-bit integer.
    U64,
    /// Predicate (1-bit).
    Pred,
}

impl Ty {
    /// Width in bytes (predicates count as 4: they occupy a predicate
    /// register, not a data register, but need a nonzero width).
    pub fn bytes(self) -> u8 {
        match self {
            Ty::F32 | Ty::S32 | Ty::U32 | Ty::Pred => 4,
            Ty::F64 | Ty::S64 | Ty::U64 => 8,
        }
    }

    /// Whether this is a 64-bit type (drives Conv64 classification).
    pub fn is_64(self) -> bool {
        matches!(self, Ty::F64 | Ty::S64 | Ty::U64)
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// PTX type suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            Ty::F32 => "f32",
            Ty::F64 => "f64",
            Ty::S32 => "s32",
            Ty::U32 => "u32",
            Ty::S64 => "s64",
            Ty::U64 => "u64",
            Ty::Pred => "pred",
        }
    }

    /// Parses a PTX type suffix.
    pub fn from_suffix(s: &str) -> Option<Ty> {
        Some(match s {
            "f32" => Ty::F32,
            "f64" => Ty::F64,
            "s32" => Ty::S32,
            "u32" => Ty::U32,
            "s64" => Ty::S64,
            "u64" => Ty::U64,
            "pred" => Ty::Pred,
            _ => return None,
        })
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Comparison operators for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// PTX mnemonic fragment.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Parses a PTX comparison fragment.
    pub fn from_mnemonic(s: &str) -> Option<CmpOp> {
        Some(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }
}

/// Instruction kind (the mnemonic family, without the type suffix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Addition / subtraction.
    Add,
    /// Multiplication.
    Mul,
    /// Fused multiply-add.
    Fma,
    /// Division (full-precision).
    Div,
    /// Minimum / maximum.
    Min,
    /// Reciprocal approximation.
    Rcp,
    /// Square root.
    Sqrt,
    /// Base-2 exponential.
    Ex2,
    /// Base-2 logarithm.
    Lg2,
    /// Sine (special function unit).
    Sin,
    /// Bitwise and/or/xor.
    Logic,
    /// Shift left/right.
    Shift,
    /// Type conversion; the source type rides along.
    Cvt(Ty),
    /// Register move.
    Mov,
    /// Predicate-setting comparison.
    Setp(CmpOp),
    /// Predicated select.
    Selp,
    /// Load from a memory space.
    Ld(MemSpace),
    /// Store to a memory space.
    St(MemSpace),
    /// Texture fetch.
    Tex,
    /// Surface load/store.
    Surf,
    /// Block-wide barrier (`bar.sync`).
    Bar,
    /// Unconditional branch (only as terminator).
    Bra,
    /// Kernel exit.
    Exit,
}

/// A typed opcode: `(kind, type)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Opcode {
    /// Mnemonic family.
    pub kind: OpKind,
    /// Operand type.
    pub ty: Ty,
}

impl Opcode {
    /// Creates an opcode.
    pub const fn new(kind: OpKind, ty: Ty) -> Self {
        Self { kind, ty }
    }

    /// The Table II operation class this opcode is accounted under.
    ///
    /// The mapping follows the Table II row descriptions:
    /// * float add/mul/fma → `FPIns32`/`FPIns64` by width;
    /// * min/max/compare/select → `CompMinMax`;
    /// * logic/shift → the shift/extract/shuffle row;
    /// * conversions → `Conv64` when either side is 64-bit, else `Conv32`;
    /// * special functions (rcp/sqrt/ex2/lg2/sin, and full-precision
    ///   divide, which expands to them) → `LogSinCos`;
    /// * integer add (and integer `mad`-free mul, which the SASS-level
    ///   XMAD sequence issues through the ALU) → `IntAdd32`;
    /// * tex/ld/st/surf → the memory rows; predicates → `PredIns`;
    ///   branches/barriers/exit → `CtrlIns`; moves → `MoveIns`.
    pub fn op_class(self) -> OpClass {
        match self.kind {
            OpKind::Add | OpKind::Mul | OpKind::Fma => {
                if self.ty.is_float() {
                    if self.ty.is_64() {
                        OpClass::FpIns64
                    } else {
                        OpClass::FpIns32
                    }
                } else {
                    OpClass::IntAdd32
                }
            }
            OpKind::Div | OpKind::Rcp | OpKind::Sqrt | OpKind::Ex2 | OpKind::Lg2 | OpKind::Sin => {
                OpClass::LogSinCos
            }
            OpKind::Min | OpKind::Selp => OpClass::CompMinMax,
            OpKind::Logic | OpKind::Shift => OpClass::ShiftShuffle,
            OpKind::Cvt(from) => {
                if self.ty.is_64() || from.is_64() {
                    OpClass::Conv64
                } else {
                    OpClass::Conv32
                }
            }
            OpKind::Mov => OpClass::MoveIns,
            OpKind::Setp(_) => OpClass::PredIns,
            OpKind::Ld(_) | OpKind::St(_) => OpClass::LdStIns,
            OpKind::Tex => OpClass::TexIns,
            OpKind::Surf => OpClass::SurfIns,
            OpKind::Bar | OpKind::Bra | OpKind::Exit => OpClass::CtrlIns,
        }
    }

    /// The PTX-style mnemonic, e.g. `add.f32`, `ld.global.f32`,
    /// `setp.lt.s32`, `cvt.f32.s32`.
    pub fn mnemonic(self) -> String {
        match self.kind {
            OpKind::Add => format!("add.{}", self.ty),
            OpKind::Mul => format!("mul.{}", self.ty),
            OpKind::Fma => format!("fma.{}", self.ty),
            OpKind::Div => format!("div.{}", self.ty),
            OpKind::Min => format!("min.{}", self.ty),
            OpKind::Rcp => format!("rcp.{}", self.ty),
            OpKind::Sqrt => format!("sqrt.{}", self.ty),
            OpKind::Ex2 => format!("ex2.{}", self.ty),
            OpKind::Lg2 => format!("lg2.{}", self.ty),
            OpKind::Sin => format!("sin.{}", self.ty),
            OpKind::Logic => format!("and.{}", self.ty),
            OpKind::Shift => format!("shl.{}", self.ty),
            OpKind::Cvt(from) => format!("cvt.{}.{}", self.ty, from),
            OpKind::Mov => format!("mov.{}", self.ty),
            OpKind::Setp(cmp) => format!("setp.{}.{}", cmp.mnemonic(), self.ty),
            OpKind::Selp => format!("selp.{}", self.ty),
            OpKind::Ld(space) => format!("ld.{}.{}", space, self.ty),
            OpKind::St(space) => format!("st.{}.{}", space, self.ty),
            OpKind::Tex => format!("tex.{}", self.ty),
            OpKind::Surf => format!("surf.{}", self.ty),
            OpKind::Bar => "bar.sync".to_string(),
            OpKind::Bra => "bra".to_string(),
            OpKind::Exit => "exit".to_string(),
        }
    }

    /// Parses a mnemonic produced by [`Opcode::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        if s == "bar.sync" {
            return Some(Opcode::new(OpKind::Bar, Ty::U32));
        }
        if s == "bra" {
            return Some(Opcode::new(OpKind::Bra, Ty::U32));
        }
        if s == "exit" {
            return Some(Opcode::new(OpKind::Exit, Ty::U32));
        }
        let parts: Vec<&str> = s.split('.').collect();
        let kind_str = parts.first()?;
        match *kind_str {
            "setp" => {
                // setp.<cmp>.<ty>
                if parts.len() != 3 {
                    return None;
                }
                let cmp = CmpOp::from_mnemonic(parts[1])?;
                let ty = Ty::from_suffix(parts[2])?;
                Some(Opcode::new(OpKind::Setp(cmp), ty))
            }
            "cvt" => {
                // cvt.<to>.<from>
                if parts.len() != 3 {
                    return None;
                }
                let to = Ty::from_suffix(parts[1])?;
                let from = Ty::from_suffix(parts[2])?;
                Some(Opcode::new(OpKind::Cvt(from), to))
            }
            "ld" | "st" => {
                // ld.<space>.<ty>
                if parts.len() != 3 {
                    return None;
                }
                let space = parse_space(parts[1])?;
                let ty = Ty::from_suffix(parts[2])?;
                let kind = if *kind_str == "ld" { OpKind::Ld(space) } else { OpKind::St(space) };
                Some(Opcode::new(kind, ty))
            }
            _ => {
                if parts.len() != 2 {
                    return None;
                }
                let ty = Ty::from_suffix(parts[1])?;
                let kind = match *kind_str {
                    "add" => OpKind::Add,
                    "mul" => OpKind::Mul,
                    "fma" => OpKind::Fma,
                    "div" => OpKind::Div,
                    "min" => OpKind::Min,
                    "rcp" => OpKind::Rcp,
                    "sqrt" => OpKind::Sqrt,
                    "ex2" => OpKind::Ex2,
                    "lg2" => OpKind::Lg2,
                    "sin" => OpKind::Sin,
                    "and" => OpKind::Logic,
                    "shl" => OpKind::Shift,
                    "mov" => OpKind::Mov,
                    "selp" => OpKind::Selp,
                    "tex" => OpKind::Tex,
                    "surf" => OpKind::Surf,
                    _ => return None,
                };
                Some(Opcode::new(kind, ty))
            }
        }
    }
}

fn parse_space(s: &str) -> Option<MemSpace> {
    Some(match s {
        "global" => MemSpace::Global,
        "shared" => MemSpace::Shared,
        "local" => MemSpace::Local,
        "const" => MemSpace::Constant,
        "tex" => MemSpace::Texture,
        _ => return None,
    })
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::InstrClass;

    #[test]
    fn op_class_mapping_follows_table_ii() {
        assert_eq!(Opcode::new(OpKind::Fma, Ty::F32).op_class(), OpClass::FpIns32);
        assert_eq!(Opcode::new(OpKind::Add, Ty::F64).op_class(), OpClass::FpIns64);
        assert_eq!(Opcode::new(OpKind::Add, Ty::S32).op_class(), OpClass::IntAdd32);
        assert_eq!(Opcode::new(OpKind::Min, Ty::F32).op_class(), OpClass::CompMinMax);
        assert_eq!(Opcode::new(OpKind::Shift, Ty::U32).op_class(), OpClass::ShiftShuffle);
        assert_eq!(Opcode::new(OpKind::Sqrt, Ty::F32).op_class(), OpClass::LogSinCos);
        assert_eq!(Opcode::new(OpKind::Div, Ty::F32).op_class(), OpClass::LogSinCos);
        assert_eq!(
            Opcode::new(OpKind::Cvt(Ty::S32), Ty::F32).op_class(),
            OpClass::Conv32
        );
        assert_eq!(
            Opcode::new(OpKind::Cvt(Ty::S32), Ty::F64).op_class(),
            OpClass::Conv64
        );
        assert_eq!(
            Opcode::new(OpKind::Ld(MemSpace::Global), Ty::F32).op_class(),
            OpClass::LdStIns
        );
        assert_eq!(Opcode::new(OpKind::Tex, Ty::F32).op_class(), OpClass::TexIns);
        assert_eq!(
            Opcode::new(OpKind::Setp(CmpOp::Lt), Ty::S32).op_class(),
            OpClass::PredIns
        );
        assert_eq!(Opcode::new(OpKind::Bra, Ty::U32).op_class(), OpClass::CtrlIns);
        assert_eq!(Opcode::new(OpKind::Bar, Ty::U32).op_class(), OpClass::CtrlIns);
        assert_eq!(Opcode::new(OpKind::Mov, Ty::F32).op_class(), OpClass::MoveIns);
    }

    #[test]
    fn coarse_classes() {
        assert_eq!(Opcode::new(OpKind::Fma, Ty::F32).op_class().class(), InstrClass::Flops);
        assert_eq!(
            Opcode::new(OpKind::St(MemSpace::Shared), Ty::F32).op_class().class(),
            InstrClass::Mem
        );
        assert_eq!(Opcode::new(OpKind::Bra, Ty::U32).op_class().class(), InstrClass::Ctrl);
    }

    #[test]
    fn mnemonic_round_trip() {
        let samples = [
            Opcode::new(OpKind::Add, Ty::F32),
            Opcode::new(OpKind::Fma, Ty::F64),
            Opcode::new(OpKind::Setp(CmpOp::Ge), Ty::S32),
            Opcode::new(OpKind::Cvt(Ty::S32), Ty::F32),
            Opcode::new(OpKind::Ld(MemSpace::Global), Ty::F32),
            Opcode::new(OpKind::St(MemSpace::Shared), Ty::F64),
            Opcode::new(OpKind::Ld(MemSpace::Local), Ty::F32),
            Opcode::new(OpKind::Bar, Ty::U32),
            Opcode::new(OpKind::Bra, Ty::U32),
            Opcode::new(OpKind::Exit, Ty::U32),
            Opcode::new(OpKind::Sin, Ty::F32),
            Opcode::new(OpKind::Selp, Ty::F32),
            Opcode::new(OpKind::Mov, Ty::U64),
        ];
        for op in samples {
            let text = op.mnemonic();
            let parsed = Opcode::from_mnemonic(&text)
                .unwrap_or_else(|| panic!("failed to parse {text}"));
            assert_eq!(parsed, op, "{text}");
        }
    }

    #[test]
    fn bad_mnemonics_rejected() {
        assert_eq!(Opcode::from_mnemonic(""), None);
        assert_eq!(Opcode::from_mnemonic("frobnicate.f32"), None);
        assert_eq!(Opcode::from_mnemonic("add"), None);
        assert_eq!(Opcode::from_mnemonic("add.q17"), None);
        assert_eq!(Opcode::from_mnemonic("setp.zz.s32"), None);
        assert_eq!(Opcode::from_mnemonic("ld.nowhere.f32"), None);
    }

    #[test]
    fn type_properties() {
        assert_eq!(Ty::F64.bytes(), 8);
        assert_eq!(Ty::S32.bytes(), 4);
        assert!(Ty::U64.is_64());
        assert!(!Ty::F32.is_64());
        assert!(Ty::F64.is_float());
        assert!(!Ty::S32.is_float());
    }
}
