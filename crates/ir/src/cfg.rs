//! Control-flow-graph analyses.
//!
//! The paper's static analyzer "builds a CFG to help understand flow
//! divergence" (§V, comparison with STATuner). This module provides the
//! graph machinery: predecessor/successor maps, reverse postorder,
//! dominators and postdominators (classic iterative dataflow), natural
//! loop detection, and — the piece the divergence model needs —
//! *divergent regions*: the blocks between a thread-dependent branch and
//! its immediate postdominator, which a warp executes serially for both
//! sides.

use crate::block::{BlockId, Program, Terminator};
use std::collections::HashSet;

/// A natural loop discovered in the CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// Source of the back edge (the latch).
    pub latch: BlockId,
    /// All blocks in the loop body, header and latch included.
    pub body: HashSet<BlockId>,
}

/// A region of blocks a warp executes serially when a divergent branch
/// splits its lanes (paper Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergentRegion {
    /// The block whose terminator diverges.
    pub branch_block: BlockId,
    /// The immediate postdominator where lanes reconverge (`None` when
    /// control reaches exit before reconverging).
    pub reconvergence: Option<BlockId>,
    /// Blocks strictly between branch and reconvergence point.
    pub body: HashSet<BlockId>,
}

/// Control-flow graph over a [`Program`]'s basic blocks.
#[derive(Debug, Clone)]
pub struct Cfg {
    n: usize,
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    /// Immediate dominator of each block (entry's is itself).
    idom: Vec<BlockId>,
    /// Immediate postdominator (`None` for exit blocks or blocks that
    /// cannot reach an exit).
    ipostdom: Vec<Option<BlockId>>,
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG and runs the dominator analyses.
    pub fn build(program: &Program) -> Cfg {
        let n = program.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (i, b) in program.blocks.iter().enumerate() {
            let from = BlockId(i as u32);
            for s in b.term.successors() {
                succs[i].push(s);
                preds[s.0 as usize].push(from);
            }
        }
        let rpo = reverse_postorder(n, &succs);
        let idom = dominators(n, &preds, &rpo);
        let ipostdom = postdominators(n, &succs, program);
        Cfg { n, succs, preds, idom, ipostdom, rpo }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no blocks.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Successors of a block.
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// Predecessors of a block.
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Blocks in reverse postorder from the entry.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Immediate dominator (entry maps to itself).
    pub fn idom(&self, b: BlockId) -> BlockId {
        self.idom[b.0 as usize]
    }

    /// Immediate postdominator, if any.
    pub fn ipostdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipostdom[b.0 as usize]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        dominates_in(&self.idom, a, b)
    }

    /// Natural loops: back edges `latch → header` where the header
    /// dominates the latch (this includes the explicit
    /// [`Terminator::LoopBack`] edges lowering produces and any
    /// parser-constructed equivalents).
    pub fn natural_loops(&self, program: &Program) -> Vec<NaturalLoop> {
        natural_loops_in(program, &self.preds, &self.idom)
    }

    /// Divergent regions: for every divergent conditional branch, the set
    /// of blocks between it and its reconvergence point.
    pub fn divergent_regions(&self, program: &Program) -> Vec<DivergentRegion> {
        divergent_regions_in(program, &self.succs, &self.ipostdom)
    }
}

/// Whether `a` dominates `b` (reflexive) in a materialized idom tree.
pub(crate) fn dominates_in(idom: &[BlockId], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        let next = idom[cur.0 as usize];
        if next == cur {
            return false;
        }
        cur = next;
    }
}

/// Natural-loop detection over precomputed predecessors + dominators
/// (shared by [`Cfg`] and [`crate::index::ProgramIndex`]).
pub(crate) fn natural_loops_in(
    program: &Program,
    preds: &[Vec<BlockId>],
    idom: &[BlockId],
) -> Vec<NaturalLoop> {
    let mut loops = Vec::new();
    for (i, b) in program.blocks.iter().enumerate() {
        let latch = BlockId(i as u32);
        for target in b.term.successors() {
            if dominates_in(idom, target, latch) {
                loops.push(NaturalLoop {
                    header: target,
                    latch,
                    body: loop_body(preds, idom, target, latch),
                });
            }
        }
    }
    loops.sort_by_key(|l| (l.header, l.latch));
    loops
}

/// Blocks of the natural loop for back edge `latch → header`:
/// header plus all blocks that reach the latch without passing
/// through the header.
fn loop_body(
    preds: &[Vec<BlockId>],
    idom: &[BlockId],
    header: BlockId,
    latch: BlockId,
) -> HashSet<BlockId> {
    let mut body = HashSet::from([header, latch]);
    let mut stack = vec![latch];
    while let Some(b) = stack.pop() {
        for &p in &preds[b.0 as usize] {
            if !body.contains(&p) {
                body.insert(p);
                stack.push(p);
            }
        }
    }
    // Keep only blocks dominated by the header (well-formed natural
    // loop membership; guards against irreducible shapes from
    // hand-written disassembly).
    body.retain(|&b| dominates_in(idom, header, b));
    body
}

/// Divergent-region detection over precomputed successors +
/// postdominators (shared by [`Cfg`] and
/// [`crate::index::ProgramIndex`]).
pub(crate) fn divergent_regions_in(
    program: &Program,
    succs: &[Vec<BlockId>],
    ipostdom: &[Option<BlockId>],
) -> Vec<DivergentRegion> {
    let mut regions = Vec::new();
    for (i, b) in program.blocks.iter().enumerate() {
        let branch_block = BlockId(i as u32);
        let Terminator::CondBranch { divergent: true, .. } = &b.term else {
            continue;
        };
        let reconvergence = ipostdom[i];
        let mut body = HashSet::new();
        // Walk forward from each successor until the reconvergence
        // point (or exit).
        for s in b.term.successors() {
            let mut stack = vec![s];
            while let Some(cur) = stack.pop() {
                if Some(cur) == reconvergence || cur == branch_block {
                    continue;
                }
                if body.insert(cur) {
                    stack.extend(succs[cur.0 as usize].iter().copied());
                }
            }
        }
        regions.push(DivergentRegion { branch_block, reconvergence, body });
    }
    regions
}

/// Reverse postorder over the successor graph from block 0.
pub(crate) fn reverse_postorder(n: usize, succs: &[Vec<BlockId>]) -> Vec<BlockId> {
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    // Iterative DFS with explicit phase marking.
    let mut stack: Vec<(BlockId, usize)> = Vec::new();
    if n > 0 {
        stack.push((BlockId(0), 0));
        visited[0] = true;
    }
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let ss = &succs[b.0 as usize];
        if *next < ss.len() {
            let s = ss[*next];
            *next += 1;
            if !visited[s.0 as usize] {
                visited[s.0 as usize] = true;
                stack.push((s, 0));
            }
        } else {
            postorder.push(b);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

/// Cooper–Harvey–Kennedy iterative dominators.
pub(crate) fn dominators(n: usize, preds: &[Vec<BlockId>], rpo: &[BlockId]) -> Vec<BlockId> {
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    if n == 0 {
        return Vec::new();
    }
    idom[0] = Some(BlockId(0));
    // Dense RPO position map indexed by `BlockId.0`; `usize::MAX` marks
    // blocks unreachable from the entry.
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b.0 as usize] = i;
    }
    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                a = idom[a.0 as usize].expect("processed");
            }
            while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                b = idom[b.0 as usize].expect("processed");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.0 as usize] {
                if idom[p.0 as usize].is_none() || rpo_index[p.0 as usize] == usize::MAX {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, p, cur),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.0 as usize] != Some(ni) {
                    idom[b.0 as usize] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    // Unreachable blocks dominate themselves by convention.
    (0..n)
        .map(|i| idom[i].unwrap_or(BlockId(i as u32)))
        .collect()
}

/// Postdominators via dominators of the reversed graph, using a virtual
/// exit that all `Ret` blocks feed.
pub(crate) fn postdominators(
    n: usize,
    succs: &[Vec<BlockId>],
    program: &Program,
) -> Vec<Option<BlockId>> {
    if n == 0 {
        return Vec::new();
    }
    // Build the reversed graph with a virtual exit node at index n.
    let virt = n;
    let mut rsuccs: Vec<Vec<BlockId>> = vec![Vec::new(); n + 1];
    let mut rpreds: Vec<Vec<BlockId>> = vec![Vec::new(); n + 1];
    // Virtual exit's "successors" in the reversed graph are the Ret
    // blocks (edges exit → ret-block).
    for (i, b) in program.blocks.iter().enumerate() {
        if matches!(b.term, Terminator::Ret) {
            rsuccs[virt].push(BlockId(i as u32));
            rpreds[i].push(BlockId(virt as u32));
        }
    }
    for (i, ss) in succs.iter().enumerate() {
        for s in ss {
            // Original edge i → s becomes reversed edge s → i.
            rsuccs[s.0 as usize].push(BlockId(i as u32));
            rpreds[i].push(*s);
        }
    }
    // Reverse graph entry is the virtual exit. Renumber so the entry is
    // index 0 by swapping roles: run RPO/dominators over indices with
    // start = virt.
    let rpo = {
        let mut visited = vec![false; n + 1];
        let mut postorder = Vec::with_capacity(n + 1);
        let mut stack: Vec<(usize, usize)> = vec![(virt, 0)];
        visited[virt] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let ss = &rsuccs[b];
            if *next < ss.len() {
                let s = ss[*next].0 as usize;
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(BlockId(b as u32));
                stack.pop();
            }
        }
        postorder.reverse();
        postorder
    };
    // Dense RPO position map over the reversed graph (virtual exit
    // included); `usize::MAX` marks blocks that cannot reach an exit.
    let mut rpo_index = vec![usize::MAX; n + 1];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b.0 as usize] = i;
    }
    let mut idom: Vec<Option<BlockId>> = vec![None; n + 1];
    idom[virt] = Some(BlockId(virt as u32));
    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                a = idom[a.0 as usize].expect("processed");
            }
            while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                b = idom[b.0 as usize].expect("processed");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &rpreds[b.0 as usize] {
                if idom[p.0 as usize].is_none() || rpo_index[p.0 as usize] == usize::MAX {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, p, cur),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.0 as usize] != Some(ni) {
                    idom[b.0 as usize] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    (0..n)
        .map(|i| match idom[i] {
            Some(d) if d.0 as usize != virt => Some(d),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{
        AluOp, Branch, DivergenceKind, KernelAst, Loop, SizeExpr, Stmt, TripCount,
    };
    use crate::lower::{lower, LowerOptions};
    use oriole_arch::Family;

    fn lowered(body: Vec<Stmt>) -> Program {
        let mut k = KernelAst::new("cfg_test");
        k.body = body;
        lower(&k, Family::Kepler, LowerOptions::default())
    }

    #[test]
    fn straight_line_has_trivial_cfg() {
        let p = lowered(vec![Stmt::ops(AluOp::AddF32, 1)]);
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.len(), 1);
        assert!(cfg.successors(BlockId(0)).is_empty());
        assert_eq!(cfg.idom(BlockId(0)), BlockId(0));
        assert!(!cfg.is_empty());
    }

    #[test]
    fn loop_back_edge_found() {
        let p = lowered(vec![Stmt::Loop(Loop {
            trip: TripCount::Size(SizeExpr::N),
            unrollable: true,
            body: vec![Stmt::ops(AluOp::FmaF32, 1)],
        })]);
        let cfg = Cfg::build(&p);
        let loops = cfg.natural_loops(&p);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        // Single-block loop: header == latch == body block.
        assert_eq!(l.header, l.latch);
        assert!(l.body.contains(&l.header));
    }

    #[test]
    fn nested_loops_found() {
        let p = lowered(vec![Stmt::Loop(Loop {
            trip: TripCount::GridStride(SizeExpr::N2),
            unrollable: false,
            body: vec![Stmt::Loop(Loop {
                trip: TripCount::Size(SizeExpr::N),
                unrollable: true,
                body: vec![Stmt::ops(AluOp::FmaF32, 1)],
            })],
        })]);
        let cfg = Cfg::build(&p);
        let loops = cfg.natural_loops(&p);
        assert_eq!(loops.len(), 2);
        // One loop body must be a strict subset of the other.
        let (a, b) = (&loops[0].body, &loops[1].body);
        let (inner, outer) = if a.len() < b.len() { (a, b) } else { (b, a) };
        assert!(inner.iter().all(|x| outer.contains(x)));
        assert!(inner.len() < outer.len());
    }

    #[test]
    fn divergent_region_detected_and_reconverges() {
        let p = lowered(vec![
            Stmt::If(Branch {
                divergence: DivergenceKind::ThreadDependent,
                taken_fraction: 0.5,
                then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
                else_body: vec![Stmt::ops(AluOp::MulF32, 1)],
            }),
            Stmt::ops(AluOp::AddF32, 1),
        ]);
        let cfg = Cfg::build(&p);
        let regions = cfg.divergent_regions(&p);
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        assert_eq!(r.branch_block, BlockId(0));
        // then + else blocks in the region; merge is the reconvergence.
        assert_eq!(r.body.len(), 2);
        let merge = r.reconvergence.expect("reconverges");
        assert!(!r.body.contains(&merge));
    }

    #[test]
    fn uniform_branch_is_not_divergent() {
        let p = lowered(vec![Stmt::If(Branch {
            divergence: DivergenceKind::Uniform,
            taken_fraction: 0.5,
            then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
            else_body: vec![],
        })]);
        let cfg = Cfg::build(&p);
        assert!(cfg.divergent_regions(&p).is_empty());
    }

    #[test]
    fn dominance_in_diamond() {
        let p = lowered(vec![Stmt::If(Branch {
            divergence: DivergenceKind::ThreadDependent,
            taken_fraction: 0.3,
            then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
            else_body: vec![Stmt::ops(AluOp::MulF32, 1)],
        })]);
        let cfg = Cfg::build(&p);
        // entry=0, then=1, else=2, merge=3.
        assert!(cfg.dominates(BlockId(0), BlockId(3)));
        assert!(!cfg.dominates(BlockId(1), BlockId(3)));
        assert_eq!(cfg.idom(BlockId(3)), BlockId(0));
        assert_eq!(cfg.ipostdom(BlockId(0)), Some(BlockId(3)));
        // rpo starts at entry.
        assert_eq!(cfg.reverse_postorder()[0], BlockId(0));
        // preds of merge are then and else.
        let mut preds = cfg.predecessors(BlockId(3)).to_vec();
        preds.sort();
        assert_eq!(preds, vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn divergence_inside_loop_reconverges_within_loop() {
        let p = lowered(vec![Stmt::Loop(Loop {
            trip: TripCount::Size(SizeExpr::N),
            unrollable: false,
            body: vec![
                Stmt::If(Branch {
                    divergence: DivergenceKind::ThreadDependent,
                    taken_fraction: 0.1,
                    then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
                    else_body: vec![],
                }),
                Stmt::ops(AluOp::FmaF32, 1),
            ],
        })]);
        let cfg = Cfg::build(&p);
        let regions = cfg.divergent_regions(&p);
        assert_eq!(regions.len(), 1);
        let loops = cfg.natural_loops(&p);
        assert_eq!(loops.len(), 1);
        // The divergent region sits inside the loop body.
        for b in &regions[0].body {
            assert!(loops[0].body.contains(b), "{b} outside loop");
        }
    }
}
