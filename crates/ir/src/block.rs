//! Basic blocks, symbolic execution frequencies, and whole programs.

use crate::ast::TripCount;
use crate::instr::{Instr, Pred};
use oriole_arch::Family;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Index of a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Symbolic per-thread execution frequency of a basic block.
///
/// Lowering records, for each block, the product of the enclosing loop
/// trip counts and branch probabilities. The static analyzer evaluates
/// this at a concrete problem size / launch geometry to obtain expected
/// dynamic instruction counts *without executing anything* — the essence
/// of the paper's "predictive modeling based on static data".
#[derive(Debug, Clone, PartialEq)]
pub enum FreqExpr {
    /// Executes exactly once per thread.
    Once,
    /// A constant multiplier.
    Const(f64),
    /// A loop trip count.
    Trip(TripCount),
    /// A branch-probability factor in `[0, 1]` for a *uniform* branch:
    /// whole warps agree, so thread-level and warp-level probabilities
    /// coincide.
    Fraction(f64),
    /// A branch-probability factor for a *divergent* branch side: each
    /// thread takes it with probability `p` independently, so a warp
    /// executes the side whenever any of its 32 lanes does —
    /// `1 − (1−p)³²` at warp level.
    DivFraction(f64),
    /// Product of factors.
    Mul(Vec<FreqExpr>),
}

/// Warp-level probability that at least one of 32 lanes takes a branch
/// side each lane takes independently with probability `p`.
fn warp_any(p: f64) -> f64 {
    1.0 - (1.0 - p.clamp(0.0, 1.0)).powi(32)
}

impl FreqExpr {
    /// Evaluates the critical-path per-thread execution count (grid-stride
    /// trips round up; see [`TripCount::eval`]).
    pub fn eval(&self, n: u64, tc: u32, bc: u32) -> f64 {
        match self {
            FreqExpr::Once => 1.0,
            FreqExpr::Const(c) => *c,
            FreqExpr::Trip(t) => t.eval(n, tc, bc),
            FreqExpr::Fraction(p) | FreqExpr::DivFraction(p) => *p,
            FreqExpr::Mul(fs) => fs.iter().map(|f| f.eval(n, tc, bc)).product(),
        }
    }

    /// Evaluates the thread-averaged execution count (surplus grid-stride
    /// threads contribute fractionally; see [`TripCount::eval_expected`]).
    pub fn eval_expected(&self, n: u64, tc: u32, bc: u32) -> f64 {
        match self {
            FreqExpr::Once => 1.0,
            FreqExpr::Const(c) => *c,
            FreqExpr::Trip(t) => t.eval_expected(n, tc, bc),
            FreqExpr::Fraction(p) | FreqExpr::DivFraction(p) => *p,
            FreqExpr::Mul(fs) => fs.iter().map(|f| f.eval_expected(n, tc, bc)).product(),
        }
    }

    /// Evaluates the *warp-level* execution count: what an issued-
    /// instruction profiler observes, averaged over the grid's warps.
    /// Divergent branch sides execute whenever any lane takes them
    /// (`1−(1−p)³²`). Grid-stride trips stay fractional: work items pack
    /// into warps, so the total warp-level work (`eval_warp × #warps`) is
    /// geometry-invariant regardless of oversubscription; inactive warps
    /// fail the range guard and contribute nothing. This is the quantity
    /// the simulator's dynamic instruction counters integrate —
    /// deliberately different from [`FreqExpr::eval_expected`], which is
    /// the static analyzer's thread-level estimate (the gap is the
    /// paper's Table VI error).
    pub fn eval_warp(&self, n: u64, tc: u32, bc: u32) -> f64 {
        match self {
            FreqExpr::Once => 1.0,
            FreqExpr::Const(c) => *c,
            FreqExpr::Trip(t) => t.eval_expected(n, tc, bc),
            FreqExpr::Fraction(p) => *p,
            FreqExpr::DivFraction(p) => warp_any(*p),
            FreqExpr::Mul(fs) => fs.iter().map(|f| f.eval_warp(n, tc, bc)).product(),
        }
    }

    /// Multiplies this frequency by another factor, flattening products.
    pub fn times(self, other: FreqExpr) -> FreqExpr {
        match (self, other) {
            (FreqExpr::Once, o) => o,
            (s, FreqExpr::Once) => s,
            (FreqExpr::Mul(mut a), FreqExpr::Mul(b)) => {
                a.extend(b);
                FreqExpr::Mul(a)
            }
            (FreqExpr::Mul(mut a), o) => {
                a.push(o);
                FreqExpr::Mul(a)
            }
            (s, FreqExpr::Mul(mut b)) => {
                b.insert(0, s);
                FreqExpr::Mul(b)
            }
            (s, o) => FreqExpr::Mul(vec![s, o]),
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch.
    CondBranch {
        /// Predicate register guarding the branch.
        pred: Pred,
        /// Target when the predicate holds.
        taken: BlockId,
        /// Target otherwise.
        fallthrough: BlockId,
        /// Whether lanes of one warp can disagree on the predicate.
        divergent: bool,
        /// Per-thread probability of taking the branch.
        taken_fraction: f64,
    },
    /// Loop back-edge: jump to `target` while the (symbolic) trip count
    /// lasts, then fall through to `exit`. Lowering uses this instead of a
    /// plain `CondBranch` so the trip information survives into the CFG.
    LoopBack {
        /// Loop-header block.
        target: BlockId,
        /// Block executed after the loop finishes.
        exit: BlockId,
        /// Symbolic trip count of the loop.
        trip: TripCount,
    },
    /// Kernel exit.
    Ret,
}

impl Terminator {
    /// Successor block ids, in (taken, fallthrough) order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::CondBranch { taken, fallthrough, .. } => vec![*taken, *fallthrough],
            Terminator::LoopBack { target, exit, .. } => vec![*target, *exit],
            Terminator::Ret => vec![],
        }
    }
}

/// A basic block: straight-line instructions plus a terminator, annotated
/// with its symbolic execution frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Human-readable label (unique within the program).
    pub label: String,
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// Terminator.
    pub term: Terminator,
    /// Symbolic per-thread execution frequency.
    pub freq: FreqExpr,
}

/// Program-level metadata: what `--ptxas-options=-v` would have printed.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramMeta {
    /// Target architecture family.
    pub family: Family,
    /// Registers per thread after allocation (ptxas "registers" line).
    pub regs_per_thread: u32,
    /// Static shared memory per block, bytes.
    pub smem_static: u32,
    /// Spilled bytes per thread (0 when the kernel fits in registers).
    pub spill_bytes: u32,
}

/// Shared block storage of a [`Program`].
///
/// The block vector is by far the heaviest part of a lowered program
/// (every [`Instr`] owns an operand vector), and the compilation
/// back-end stamps out one program *per tuning point* from one lowered
/// artifact — differing only in [`ProgramMeta`]. Wrapping the arena in
/// an `Arc` makes that per-point clone a reference-count bump instead
/// of a deep copy, while [`BlockArena::make_mut`] preserves
/// copy-on-write value semantics for the rare passes (peephole
/// optimization) that actually rewrite blocks.
///
/// Dereferences to `[BasicBlock]`, so all read access — indexing,
/// iteration, `len()` — looks exactly like the plain `Vec` it replaced.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockArena(Arc<Vec<BasicBlock>>);

impl BlockArena {
    /// Wraps a freshly built block vector.
    pub fn new(blocks: Vec<BasicBlock>) -> BlockArena {
        BlockArena(Arc::new(blocks))
    }

    /// Mutable access with copy-on-write semantics: clones the blocks
    /// if (and only if) the arena is currently shared.
    pub fn make_mut(&mut self) -> &mut Vec<BasicBlock> {
        Arc::make_mut(&mut self.0)
    }

    /// Whether two arenas share one allocation (no bytes were copied
    /// between them).
    pub fn shares_storage(a: &BlockArena, b: &BlockArena) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl Deref for BlockArena {
    type Target = [BasicBlock];

    fn deref(&self) -> &[BasicBlock] {
        &self.0
    }
}

impl From<Vec<BasicBlock>> for BlockArena {
    fn from(blocks: Vec<BasicBlock>) -> BlockArena {
        BlockArena::new(blocks)
    }
}

impl<'a> IntoIterator for &'a BlockArena {
    type Item = &'a BasicBlock;
    type IntoIter = std::slice::Iter<'a, BasicBlock>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// A lowered kernel: the unit the static analyzer and simulator consume.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Kernel name.
    pub name: String,
    /// Compilation metadata.
    pub meta: ProgramMeta,
    /// Basic blocks; block 0 is the unique entry. Stored in a shared
    /// [`BlockArena`], so cloning a program (the back-end does it once
    /// per tuning point) shares the blocks instead of copying them.
    pub blocks: BlockArena,
}

impl Program {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Looks up a block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Total number of static instructions (terminators excluded).
    pub fn static_len(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Finds a block id by label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.label == label)
            .map(|i| BlockId(i as u32))
    }

    /// Checks structural invariants: entry exists, all terminator targets
    /// are in range, labels are unique. Returns a list of violations
    /// (empty = well-formed). Used by tests and the disassembly parser.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.blocks.is_empty() {
            problems.push("program has no blocks".to_string());
            return problems;
        }
        let n = self.blocks.len() as u32;
        let mut seen = std::collections::HashSet::new();
        for (i, b) in self.blocks.iter().enumerate() {
            if !seen.insert(b.label.as_str()) {
                problems.push(format!("duplicate label `{}`", b.label));
            }
            for succ in b.term.successors() {
                if succ.0 >= n {
                    problems.push(format!(
                        "block bb{i} ({}) targets out-of-range {succ}",
                        b.label
                    ));
                }
            }
            if let Terminator::CondBranch { taken_fraction, .. } = &b.term {
                if !(0.0..=1.0).contains(taken_fraction) {
                    problems.push(format!(
                        "block bb{i} taken_fraction {taken_fraction} outside [0,1]"
                    ));
                }
            }
        }
        let reachable = self.reachable();
        if !reachable[0] {
            problems.push("entry unreachable (internal error)".to_string());
        }
        problems
    }

    /// Reachability from entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![BlockId(0)];
        while let Some(b) = stack.pop() {
            let idx = b.0 as usize;
            if idx >= seen.len() || seen[idx] {
                continue;
            }
            seen[idx] = true;
            stack.extend(self.blocks[idx].term.successors());
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::SizeExpr;

    fn block(label: &str, term: Terminator) -> BasicBlock {
        BasicBlock { label: label.into(), instrs: vec![], term, freq: FreqExpr::Once }
    }

    fn meta() -> ProgramMeta {
        ProgramMeta { family: Family::Kepler, regs_per_thread: 16, smem_static: 0, spill_bytes: 0 }
    }

    #[test]
    fn freq_expr_products() {
        let f = FreqExpr::Trip(TripCount::Size(SizeExpr::N))
            .times(FreqExpr::Fraction(0.5))
            .times(FreqExpr::Const(2.0));
        assert_eq!(f.eval(100, 1, 1), 100.0);
        // Once is an identity.
        let g = FreqExpr::Once.times(FreqExpr::Const(3.0));
        assert_eq!(g.eval(1, 1, 1), 3.0);
        let h = FreqExpr::Const(3.0).times(FreqExpr::Once);
        assert_eq!(h.eval(1, 1, 1), 3.0);
    }

    #[test]
    fn freq_grid_stride_depends_on_geometry() {
        let f = FreqExpr::Trip(TripCount::GridStride(SizeExpr::N2));
        // N=64 → 4096 items; 128 threads → 32 iters; 4096 threads → 1.
        assert_eq!(f.eval(64, 128, 1), 32.0);
        assert_eq!(f.eval(64, 64, 64), 1.0);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let p = Program {
            name: "t".into(),
            meta: meta(),
            blocks: vec![
                block("entry", Terminator::Jump(BlockId(1))),
                block("exit", Terminator::Ret),
            ]
            .into(),
        };
        assert!(p.validate().is_empty());
        assert_eq!(p.block_by_label("exit"), Some(BlockId(1)));
        assert_eq!(p.block_by_label("nope"), None);
    }

    #[test]
    fn validate_catches_out_of_range_and_duplicates() {
        let p = Program {
            name: "t".into(),
            meta: meta(),
            blocks: vec![
                block("a", Terminator::Jump(BlockId(9))),
                block("a", Terminator::Ret),
            ]
            .into(),
        };
        let problems = p.validate();
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn validate_catches_bad_fraction() {
        let p = Program {
            name: "t".into(),
            meta: meta(),
            blocks: vec![
                block(
                    "entry",
                    Terminator::CondBranch {
                        pred: Pred(0),
                        taken: BlockId(1),
                        fallthrough: BlockId(1),
                        divergent: false,
                        taken_fraction: 1.5,
                    },
                ),
                block("exit", Terminator::Ret),
            ]
            .into(),
        };
        assert_eq!(p.validate().len(), 1);
    }

    #[test]
    fn reachability() {
        let p = Program {
            name: "t".into(),
            meta: meta(),
            blocks: vec![
                block("entry", Terminator::Jump(BlockId(2))),
                block("orphan", Terminator::Ret),
                block("exit", Terminator::Ret),
            ]
            .into(),
        };
        assert_eq!(p.reachable(), vec![true, false, true]);
    }

    #[test]
    fn loopback_successors() {
        let t = Terminator::LoopBack {
            target: BlockId(1),
            exit: BlockId(2),
            trip: TripCount::Const(4),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
    }
}
