//! `ProgramIndex` — the per-lowered-program analysis artifact.
//!
//! The paper's static analyzer "builds a CFG to help understand flow
//! divergence" (§V); historically this reproduction rebuilt that graph —
//! and re-walked every `Instr` vector — once per analysis phase and per
//! `(point, n)` query. [`ProgramIndex`] is the fix: one Vec-indexed
//! artifact, built **exactly once** when a front-end artifact is created
//! (`oriole_codegen::front_end`) and shared by `Arc` with every
//! specialized kernel the artifact stamps out. It owns
//!
//! * the Vec-indexed CFG: successors, predecessors, reverse postorder,
//!   immediate dominators and postdominators — O(1) access, no
//!   `HashMap` in sight;
//! * precomputed natural loops and divergent regions (region bodies
//!   stored as *sorted* block-id vectors, so any cost summed over a
//!   region is deterministic across processes and paths);
//! * per-block instruction summaries: an op-class **mix tape** (the
//!   `(class, multiplier)` pairs mix counting replays instead of
//!   touching `Instr` vectors), a **profile tape** (memory / barrier /
//!   issue events with their service parameters), the instruction count,
//!   and the terminator class;
//! * the grid-stride trip expressions (for busy-thread math) and the
//!   [`is_linear`](ProgramIndex::is_linear) /
//!   [`has_divergence`](ProgramIndex::has_divergence) flags.
//!
//! # The linear fast path
//!
//! Most paper kernels (atax, bicg, matvec bodies) lower to **branch-free
//! block graphs**: straight-line code plus loop back-edges, no
//! conditional branch anywhere. For those programs the index skips the
//! postdominator pass and divergent-region discovery entirely at build
//! time (`is_linear`), and consumers skip the divergence machinery at
//! query time whenever [`has_divergence`](ProgramIndex::has_divergence)
//! is false: warp saturation is exactly 1, and the divergence report is
//! trivially empty with unit overhead — both facts hold *bitwise*
//! because warp-level and thread-level frequency evaluation coincide
//! when no `DivFraction` factor is present.
//!
//! The fast path is **not** taken when the program contains a divergent
//! conditional branch *or* any block frequency carries a `DivFraction`
//! factor (a divergent branch side's probability): then warp-level
//! weights genuinely exceed thread-level ones and the full region-based
//! machinery runs. A program with only *uniform* conditional branches is
//! not linear (the postdominator pass runs at build time so regions can
//! be ruled out structurally), but it still qualifies for the
//! divergence-free query fast path.
//!
//! Every replayed query is bit-identical to the original walk-based
//! implementation (property-tested against the retained oracles): tapes
//! store multiplier 1.0 where the walk recorded a bare weight, and
//! IEEE-754 guarantees `w * 1.0 == w`.

use crate::ast::{AccessPattern, MemSpace, SizeExpr, TripCount};
use crate::block::{BlockId, FreqExpr, Program, Terminator};
use crate::cfg::{self, NaturalLoop};
use crate::count::{LaunchGeometry, MixCounts};
use crate::isa::OpKind;
use oriole_arch::OpClass;
use std::sync::atomic::{AtomicU64, Ordering};

static INDEX_BUILDS: AtomicU64 = AtomicU64::new(0);
static FAST_PATH_HITS: AtomicU64 = AtomicU64::new(0);
static SLOW_PATH_HITS: AtomicU64 = AtomicU64::new(0);

/// Process-wide index telemetry counters (monotonic since process
/// start). Surfaced through the tuner's `EvalStats` and `tune --stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexTelemetry {
    /// Number of [`ProgramIndex::build`] calls — one per front-end
    /// artifact when the compilation pipeline behaves.
    pub index_builds: u64,
    /// Divergence-free fast-path decisions taken at query sites.
    pub fast_path_hits: u64,
    /// Full (region-walking) divergence path decisions.
    pub slow_path_hits: u64,
}

/// Snapshot of the process-wide index telemetry.
pub fn telemetry() -> IndexTelemetry {
    IndexTelemetry {
        index_builds: INDEX_BUILDS.load(Ordering::Relaxed),
        fast_path_hits: FAST_PATH_HITS.load(Ordering::Relaxed),
        slow_path_hits: SLOW_PATH_HITS.load(Ordering::Relaxed),
    }
}

/// Terminator classification carried by a [`BlockSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermClass {
    /// Unconditional control transfer (`Jump` or `LoopBack`): issues one
    /// control instruction.
    Ctrl,
    /// Two-way conditional branch; `divergent` records whether lanes of
    /// one warp can disagree.
    CondBranch {
        /// Whether the branch can split a warp.
        divergent: bool,
    },
    /// Kernel exit: contributes no control instruction (the `exit`
    /// instruction is already in the block body).
    Ret,
}

/// One entry of a block's profile tape: everything the warp-profile
/// extractor needs to know about an instruction, with the service
/// parameters resolved at build time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfileEvent {
    /// A memory operation: loads/stores with their space and access
    /// pattern, and texture/surface operations (space `Texture`,
    /// coalesced).
    Mem {
        /// Op class of the instruction (drives the issue rate).
        class: OpClass,
        /// Address space accessed.
        space: MemSpace,
        /// Warp-level access pattern.
        pattern: AccessPattern,
    },
    /// A barrier (`bar.sync`).
    Bar {
        /// Op class of the instruction.
        class: OpClass,
    },
    /// Any other instruction: pure issue cost.
    Issue {
        /// Op class of the instruction.
        class: OpClass,
    },
}

/// Per-block instruction summary: the precomputed tapes analysis phases
/// replay instead of iterating `Instr` vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSummary {
    /// Number of straight-line instructions in the block.
    pub instr_count: usize,
    /// Mix tape: `(op_class, multiplier)` pairs. Replaying
    /// `record(class, weight * multiplier)` over the tape reproduces the
    /// walk-based mix bit-exactly (instruction entries carry multiplier
    /// 1.0; register-file entries carry the access count).
    pub mix_tape: Vec<(OpClass, f64)>,
    /// Profile tape: one event per instruction, in program order.
    pub profile_tape: Vec<ProfileEvent>,
    /// Terminator classification.
    pub term: TermClass,
}

impl BlockSummary {
    /// Whether the terminator issues a control instruction (everything
    /// but `Ret`).
    pub fn has_ctrl(&self) -> bool {
        !matches!(self.term, TermClass::Ret)
    }
}

/// A divergent region with its body stored as a **sorted** vector of
/// block ids — the deterministic counterpart of
/// [`cfg::DivergentRegion`](crate::cfg::DivergentRegion), whose
/// `HashSet` body iterates in per-instance random order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivRegion {
    /// The block whose terminator diverges.
    pub branch_block: BlockId,
    /// The immediate postdominator where lanes reconverge (`None` when
    /// control reaches exit before reconverging).
    pub reconvergence: Option<BlockId>,
    /// Blocks strictly between branch and reconvergence point, in
    /// ascending id order.
    pub body: Vec<BlockId>,
}

/// The per-lowered-program analysis artifact. See the [module
/// docs](self) for what it owns and when the linear fast path applies.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramIndex {
    n: usize,
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    idom: Vec<BlockId>,
    /// Materialized only for non-linear programs; all-`None` otherwise
    /// (a linear program has no conditional branch, hence no divergent
    /// region to reconverge).
    ipostdom: Vec<Option<BlockId>>,
    loops: Vec<NaturalLoop>,
    regions: Vec<DivRegion>,
    summaries: Vec<BlockSummary>,
    grid_strides: Vec<SizeExpr>,
    is_linear: bool,
    has_divergence: bool,
}

/// Whether a frequency expression carries a divergent-branch factor.
fn freq_has_div(f: &FreqExpr) -> bool {
    match f {
        FreqExpr::DivFraction(_) => true,
        FreqExpr::Mul(fs) => fs.iter().any(freq_has_div),
        _ => false,
    }
}

/// Incremental [`ProgramIndex`] construction, fused into the lowering
/// walk (`oriole_ir::lower::lower_indexed`): edges, per-block summary
/// tapes, divergence flags and grid-stride trips are accumulated as
/// each block is sealed, so creating the index costs no second pass
/// over the finished program's instruction vectors.
///
/// The lowering contract this builder relies on:
///
/// * blocks are sealed in final id order (`seal` call *k* describes
///   `BlockId(k)`);
/// * a sealed terminator may later be *patched* (if/else chains seal
///   with a placeholder `Ret` and link the branch targets once the
///   chains are lowered) — the placeholder contributes no edges, so a
///   patch only ever **adds** edges;
/// * block instruction vectors and frequencies are immutable once
///   sealed (patches replace terminators only).
///
/// [`IndexBuilder::finish`] then runs the same ordering/dominator
/// passes as [`ProgramIndex::build`]; equality of the two paths is
/// property-tested (see `lower::proptests`).
#[derive(Debug, Default)]
pub(crate) struct IndexBuilder {
    /// CFG edges in (source-block, seal/patch) order.
    edges: Vec<(BlockId, BlockId)>,
    summaries: Vec<BlockSummary>,
    grid_strides: Vec<SizeExpr>,
    any_cond: bool,
    any_div: bool,
}

impl IndexBuilder {
    pub(crate) fn new() -> IndexBuilder {
        IndexBuilder::default()
    }

    /// Accounts a just-sealed block (the `k`-th call describes
    /// `BlockId(k)`).
    pub(crate) fn seal(&mut self, block: &crate::block::BasicBlock) {
        let from = BlockId(self.summaries.len() as u32);
        self.summaries.push(summarize(block));
        if freq_has_div(&block.freq) {
            self.any_div = true;
        }
        self.record_term(from, &block.term);
    }

    /// Accounts a terminator patch on an already-sealed block. The
    /// sealed placeholder must have been `Ret` (no edges), so the patch
    /// strictly adds the new terminator's edges.
    pub(crate) fn patch(&mut self, at: BlockId, term: &Terminator) {
        let summary = &mut self.summaries[at.0 as usize];
        debug_assert!(
            matches!(summary.term, TermClass::Ret),
            "patched block was sealed with a non-placeholder terminator"
        );
        summary.term = term_class(term);
        self.record_term(at, term);
    }

    fn record_term(&mut self, from: BlockId, term: &Terminator) {
        match term {
            Terminator::CondBranch { divergent, .. } => {
                self.any_cond = true;
                if *divergent {
                    self.any_div = true;
                }
            }
            Terminator::LoopBack { trip: TripCount::GridStride(s), .. } => {
                self.grid_strides.push(*s);
            }
            _ => {}
        }
        for s in term.successors() {
            self.edges.push((from, s));
        }
    }

    /// Finalizes the index: distributes the accumulated edges into
    /// successor/predecessor vectors and runs the ordering, dominator
    /// and region passes exactly as [`ProgramIndex::build`] would.
    /// Bumps the process-wide build counter once — the fused path *is*
    /// the one index build of a front-end run.
    pub(crate) fn finish(self, program: &Program) -> ProgramIndex {
        INDEX_BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = program.blocks.len();
        debug_assert_eq!(n, self.summaries.len(), "every block must be sealed exactly once");
        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (from, to) in &self.edges {
            succs[from.0 as usize].push(*to);
            preds[to.0 as usize].push(*from);
        }
        // `build` discovers predecessors by scanning blocks in id order,
        // so its pred lists are ascending in the source block; the fused
        // walk discovers them in seal/patch order. No block reaches the
        // same successor through two terminator slots, so sorting
        // reproduces `build`'s lists exactly.
        for p in &mut preds {
            p.sort_unstable();
        }
        let rpo = cfg::reverse_postorder(n, &succs);
        let idom = cfg::dominators(n, &preds, &rpo);
        let loops = cfg::natural_loops_in(program, &preds, &idom);

        let is_linear = !self.any_cond;
        let (ipostdom, regions) = if is_linear {
            (vec![None; n], Vec::new())
        } else {
            let ipostdom = cfg::postdominators(n, &succs, program);
            let regions = cfg::divergent_regions_in(program, &succs, &ipostdom)
                .into_iter()
                .map(|r| {
                    let mut body: Vec<BlockId> = r.body.into_iter().collect();
                    body.sort_unstable();
                    DivRegion {
                        branch_block: r.branch_block,
                        reconvergence: r.reconvergence,
                        body,
                    }
                })
                .collect();
            (ipostdom, regions)
        };

        ProgramIndex {
            n,
            succs,
            preds,
            rpo,
            idom,
            ipostdom,
            loops,
            regions,
            summaries: self.summaries,
            grid_strides: self.grid_strides,
            is_linear,
            has_divergence: self.any_div,
        }
    }
}

impl ProgramIndex {
    /// Builds the index for a lowered program. Called once per front-end
    /// artifact; every call bumps the process-wide build counter so
    /// tests (and `tune --stats`) can assert the once-per-artifact
    /// discipline.
    pub fn build(program: &Program) -> ProgramIndex {
        INDEX_BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = program.blocks.len();
        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (i, b) in program.blocks.iter().enumerate() {
            let from = BlockId(i as u32);
            for s in b.term.successors() {
                succs[i].push(s);
                preds[s.0 as usize].push(from);
            }
        }
        let rpo = cfg::reverse_postorder(n, &succs);
        let idom = cfg::dominators(n, &preds, &rpo);
        let loops = cfg::natural_loops_in(program, &preds, &idom);

        let is_linear = !program
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::CondBranch { .. }));
        let has_divergence = program.blocks.iter().any(|b| {
            matches!(b.term, Terminator::CondBranch { divergent: true, .. })
                || freq_has_div(&b.freq)
        });

        // Linear programs skip the postdominator pass and region
        // discovery entirely — there is no conditional branch, so there
        // is nothing to reconverge.
        let (ipostdom, regions) = if is_linear {
            (vec![None; n], Vec::new())
        } else {
            let ipostdom = cfg::postdominators(n, &succs, program);
            let regions = cfg::divergent_regions_in(program, &succs, &ipostdom)
                .into_iter()
                .map(|r| {
                    let mut body: Vec<BlockId> = r.body.into_iter().collect();
                    body.sort_unstable();
                    DivRegion {
                        branch_block: r.branch_block,
                        reconvergence: r.reconvergence,
                        body,
                    }
                })
                .collect();
            (ipostdom, regions)
        };

        let summaries = program.blocks.iter().map(summarize).collect();
        let grid_strides = program
            .blocks
            .iter()
            .filter_map(|b| match &b.term {
                Terminator::LoopBack { trip: TripCount::GridStride(s), .. } => Some(*s),
                _ => None,
            })
            .collect();

        ProgramIndex {
            n,
            succs,
            preds,
            rpo,
            idom,
            ipostdom,
            loops,
            regions,
            summaries,
            grid_strides,
            is_linear,
            has_divergence,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the program has no blocks.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Successors of a block, O(1).
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// Predecessors of a block, O(1).
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Blocks in reverse postorder from the entry.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Immediate dominator (entry maps to itself).
    pub fn idom(&self, b: BlockId) -> BlockId {
        self.idom[b.0 as usize]
    }

    /// Immediate postdominator, if any. Materialized only for programs
    /// containing conditional branches; for linear programs the
    /// postdominator pass is skipped and this always returns `None`
    /// (no consumer of a linear program asks — see the module docs).
    pub fn ipostdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipostdom[b.0 as usize]
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        cfg::dominates_in(&self.idom, a, b)
    }

    /// Precomputed natural loops, sorted by `(header, latch)`.
    pub fn natural_loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Precomputed divergent regions in branch-block order, bodies
    /// sorted ascending. Empty for linear and divergence-free programs.
    pub fn divergent_regions(&self) -> &[DivRegion] {
        &self.regions
    }

    /// Per-block instruction summaries, indexed by `BlockId.0`.
    pub fn summaries(&self) -> &[BlockSummary] {
        &self.summaries
    }

    /// Summary of one block, O(1).
    pub fn summary(&self, b: BlockId) -> &BlockSummary {
        &self.summaries[b.0 as usize]
    }

    /// Whether the block graph is branch-free (no conditional branch;
    /// loop back-edges and jumps allowed).
    pub fn is_linear(&self) -> bool {
        self.is_linear
    }

    /// Whether any divergence is present: a divergent conditional branch
    /// or a `DivFraction` factor in some block frequency. When false,
    /// warp-level and thread-level frequency evaluation coincide bitwise
    /// for every block.
    pub fn has_divergence(&self) -> bool {
        self.has_divergence
    }

    /// Fast-path decision for divergence-sensitive queries, recorded in
    /// the process-wide telemetry: returns true (and counts a fast-path
    /// hit) when the program is divergence-free.
    pub fn divergence_fast_path(&self) -> bool {
        if self.has_divergence {
            SLOW_PATH_HITS.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            FAST_PATH_HITS.fetch_add(1, Ordering::Relaxed);
            true
        }
    }

    /// Work items exposed by the program's grid-stride loops at problem
    /// size `n`: the maximum over all grid-stride trip expressions, or
    /// `None` when the program has no grid-stride loop.
    pub fn grid_stride_items(&self, n: u64) -> Option<f64> {
        self.grid_strides
            .iter()
            .map(|s| s.eval(n))
            .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.max(v))))
    }

    /// Replays the mix tapes at thread-level expected weights —
    /// bit-identical to [`crate::count::expected_mix`] without touching
    /// an `Instr` vector.
    pub fn expected_mix(&self, program: &Program, geom: LaunchGeometry) -> MixCounts {
        let mut mix = MixCounts::new();
        for (block, s) in program.blocks.iter().zip(&self.summaries) {
            let weight = block.freq.eval_expected(geom.n, geom.tc, geom.bc);
            if weight == 0.0 {
                continue;
            }
            for &(class, m) in &s.mix_tape {
                mix.record(class, weight * m);
            }
            if s.has_ctrl() {
                mix.record(OpClass::CtrlIns, weight);
            }
        }
        mix
    }

    /// Replays the mix tapes unweighted — bit-identical to
    /// [`crate::count::static_mix`].
    pub fn static_mix(&self) -> MixCounts {
        let mut mix = MixCounts::new();
        for s in &self.summaries {
            for &(class, m) in &s.mix_tape {
                mix.record(class, m);
            }
            if s.has_ctrl() {
                mix.record(OpClass::CtrlIns, 1.0);
            }
        }
        mix
    }
}

/// Builds one block's summary tapes.
fn summarize(block: &crate::block::BasicBlock) -> BlockSummary {
    let mut mix_tape = Vec::with_capacity(block.instrs.len() * 2);
    let mut profile_tape = Vec::with_capacity(block.instrs.len());
    for instr in &block.instrs {
        let class = instr.opcode.op_class();
        mix_tape.push((class, 1.0));
        mix_tape.push((OpClass::Regs, f64::from(instr.regfile_accesses())));
        profile_tape.push(match instr.opcode.kind {
            OpKind::Ld(space) | OpKind::St(space) => ProfileEvent::Mem {
                class,
                space,
                pattern: instr.mem.map(|m| m.pattern).unwrap_or(AccessPattern::Coalesced),
            },
            OpKind::Tex | OpKind::Surf => ProfileEvent::Mem {
                class,
                space: MemSpace::Texture,
                pattern: AccessPattern::Coalesced,
            },
            OpKind::Bar => ProfileEvent::Bar { class },
            _ => ProfileEvent::Issue { class },
        });
    }
    let term = term_class(&block.term);
    BlockSummary { instr_count: block.instrs.len(), mix_tape, profile_tape, term }
}

/// Classifies a terminator for the per-block summary.
fn term_class(term: &Terminator) -> TermClass {
    match term {
        Terminator::Jump(_) | Terminator::LoopBack { .. } => TermClass::Ctrl,
        Terminator::CondBranch { divergent, .. } => TermClass::CondBranch { divergent: *divergent },
        Terminator::Ret => TermClass::Ret,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AluOp, Branch, DivergenceKind, KernelAst, Loop, Stmt};
    use crate::cfg::Cfg;
    use crate::count::{expected_mix, static_mix};
    use crate::lower::{lower, LowerOptions};
    use oriole_arch::Family;

    fn lowered(body: Vec<Stmt>) -> Program {
        let mut k = KernelAst::new("index_test");
        k.body = body;
        lower(&k, Family::Kepler, LowerOptions::default())
    }

    #[test]
    fn linear_program_skips_postdominators() {
        let p = lowered(vec![Stmt::Loop(Loop {
            trip: TripCount::Size(SizeExpr::N),
            unrollable: false,
            body: vec![Stmt::ops(AluOp::FmaF32, 1)],
        })]);
        let idx = ProgramIndex::build(&p);
        assert!(idx.is_linear());
        assert!(!idx.has_divergence());
        assert!(idx.divergent_regions().is_empty());
        assert!((0..idx.len()).all(|i| idx.ipostdom(BlockId(i as u32)).is_none()));
        assert!(!idx.natural_loops().is_empty());
        assert!(!idx.is_empty());
    }

    #[test]
    fn divergent_branch_disables_fast_path() {
        let p = lowered(vec![Stmt::If(Branch {
            divergence: DivergenceKind::ThreadDependent,
            taken_fraction: 0.5,
            then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
            else_body: vec![Stmt::ops(AluOp::MulF32, 1)],
        })]);
        let idx = ProgramIndex::build(&p);
        assert!(!idx.is_linear());
        assert!(idx.has_divergence());
        assert!(!idx.divergence_fast_path());
        assert_eq!(idx.divergent_regions().len(), 1);
        // Region bodies are sorted.
        let body = &idx.divergent_regions()[0].body;
        assert!(body.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn uniform_branch_is_divergence_free_but_not_linear() {
        let p = lowered(vec![Stmt::If(Branch {
            divergence: DivergenceKind::Uniform,
            taken_fraction: 0.5,
            then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
            else_body: vec![],
        })]);
        let idx = ProgramIndex::build(&p);
        assert!(!idx.is_linear());
        assert!(!idx.has_divergence());
        assert!(idx.divergence_fast_path());
        assert!(idx.divergent_regions().is_empty());
    }

    #[test]
    fn index_cfg_matches_cfg_build() {
        let p = lowered(vec![
            Stmt::If(Branch {
                divergence: DivergenceKind::ThreadDependent,
                taken_fraction: 0.3,
                then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
                else_body: vec![Stmt::ops(AluOp::MulF32, 1)],
            }),
            Stmt::Loop(Loop {
                trip: TripCount::Size(SizeExpr::N),
                unrollable: false,
                body: vec![Stmt::ops(AluOp::FmaF32, 1)],
            }),
        ]);
        let idx = ProgramIndex::build(&p);
        let cfg = Cfg::build(&p);
        assert_eq!(idx.len(), cfg.len());
        for i in 0..cfg.len() {
            let b = BlockId(i as u32);
            assert_eq!(idx.successors(b), cfg.successors(b));
            assert_eq!(idx.predecessors(b), cfg.predecessors(b));
            assert_eq!(idx.idom(b), cfg.idom(b));
            assert_eq!(idx.ipostdom(b), cfg.ipostdom(b));
        }
        assert_eq!(idx.reverse_postorder(), cfg.reverse_postorder());
        assert_eq!(idx.natural_loops(), cfg.natural_loops(&p).as_slice());
    }

    #[test]
    fn mix_replay_is_bit_identical() {
        let p = lowered(vec![
            Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 2),
            Stmt::Loop(Loop {
                trip: TripCount::Size(SizeExpr::N),
                unrollable: true,
                body: vec![Stmt::ops(AluOp::FmaF32, 3)],
            }),
        ]);
        let idx = ProgramIndex::build(&p);
        assert_eq!(idx.static_mix(), static_mix(&p));
        for (n, tc, bc) in [(64, 128, 8), (1, 32, 1), (4096, 1024, 13)] {
            let geom = LaunchGeometry::new(n, tc, bc);
            assert_eq!(idx.expected_mix(&p, geom), expected_mix(&p, geom));
        }
    }

    #[test]
    fn build_counter_increments() {
        let p = lowered(vec![Stmt::ops(AluOp::AddF32, 1)]);
        let before = telemetry().index_builds;
        let _ = ProgramIndex::build(&p);
        let _ = ProgramIndex::build(&p);
        assert!(telemetry().index_builds >= before + 2);
    }

    #[test]
    fn grid_stride_items_match_block_scan() {
        let p = lowered(vec![Stmt::Loop(Loop {
            trip: TripCount::GridStride(SizeExpr::N2),
            unrollable: false,
            body: vec![Stmt::ops(AluOp::FmaF32, 1)],
        })]);
        let idx = ProgramIndex::build(&p);
        assert_eq!(idx.grid_stride_items(64), Some(4096.0));
        let straight = lowered(vec![Stmt::ops(AluOp::AddF32, 1)]);
        assert_eq!(ProgramIndex::build(&straight).grid_stride_items(64), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ast::{AluOp, Branch, DivergenceKind, KernelAst, Loop, MemStmt, Stmt};
    use crate::cfg::Cfg;
    use crate::count::{expected_mix, static_mix};
    use crate::lower::{lower, LowerOptions};
    use oriole_arch::Family;
    use proptest::prelude::*;

    fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
        let alu = prop_oneof![
            Just(AluOp::AddF32),
            Just(AluOp::MulF32),
            Just(AluOp::FmaF32),
            Just(AluOp::DivF32),
            Just(AluOp::SqrtF32),
            Just(AluOp::AddI32),
            Just(AluOp::CvtI32F32),
        ];
        let space = prop_oneof![
            Just(MemSpace::Global),
            Just(MemSpace::Shared),
            Just(MemSpace::Constant),
        ];
        let pattern = prop_oneof![
            Just(AccessPattern::Coalesced),
            Just(AccessPattern::Broadcast),
            Just(AccessPattern::Random),
            (1u32..=64).prop_map(AccessPattern::Strided),
        ];
        let leaf = prop_oneof![
            (alu, 1u32..4).prop_map(|(op, count)| Stmt::ops(op, count)),
            (space.clone(), pattern.clone(), 1u32..3).prop_map(|(s, p, c)| Stmt::load(s, p, c)),
            (space, pattern, 1u32..3).prop_map(|(s, p, c)| {
                Stmt::Store(MemStmt { space: s, pattern: p, elem_bytes: 4, count: c })
            }),
            Just(Stmt::SyncThreads),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        let trip = prop_oneof![
            (1u64..=64).prop_map(TripCount::Const),
            (0u8..=2).prop_map(|p| TripCount::Size(SizeExpr::new(1.0, p))),
            (1u8..=2).prop_map(|p| TripCount::GridStride(SizeExpr::new(1.0, p))),
        ];
        let inner = arb_stmt(depth - 1);
        prop_oneof![
            4 => leaf,
            2 => (trip, prop::collection::vec(inner.clone(), 1..4), any::<bool>()).prop_map(
                |(trip, body, unrollable)| Stmt::Loop(Loop { trip, body, unrollable })
            ),
            1 => (
                prop_oneof![Just(DivergenceKind::Uniform), Just(DivergenceKind::ThreadDependent)],
                0.0f64..=1.0,
                prop::collection::vec(inner.clone(), 1..3),
                prop::collection::vec(inner, 0..3),
            )
                .prop_map(|(divergence, taken_fraction, then_body, else_body)| {
                    Stmt::If(Branch { divergence, taken_fraction, then_body, else_body })
                }),
        ]
        .boxed()
    }

    fn arb_kernel() -> impl Strategy<Value = KernelAst> {
        prop::collection::vec(arb_stmt(2), 1..5).prop_map(|body| {
            let mut k = KernelAst::new("index_prop");
            k.body = body;
            k
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn replayed_mixes_bit_identical(
            ast in arb_kernel(),
            fast in any::<bool>(),
            n in 1u64..256,
            tc_i in 0usize..4,
            bc in 1u32..64,
        ) {
            let tc = [32u32, 128, 512, 1024][tc_i];
            let p = lower(&ast, Family::Kepler, LowerOptions { fast_math: fast });
            let idx = ProgramIndex::build(&p);
            prop_assert_eq!(idx.static_mix(), static_mix(&p));
            let geom = LaunchGeometry::new(n, tc, bc);
            prop_assert_eq!(idx.expected_mix(&p, geom), expected_mix(&p, geom));
        }

        #[test]
        fn index_cfg_matches_walk(ast in arb_kernel()) {
            let p = lower(&ast, Family::Maxwell, LowerOptions::default());
            let idx = ProgramIndex::build(&p);
            let cfg = Cfg::build(&p);
            prop_assert_eq!(idx.len(), cfg.len());
            for i in 0..cfg.len() {
                let b = BlockId(i as u32);
                prop_assert_eq!(idx.successors(b), cfg.successors(b));
                prop_assert_eq!(idx.predecessors(b), cfg.predecessors(b));
                prop_assert_eq!(idx.idom(b), cfg.idom(b));
                // The linear fast path skips the postdominator pass; the
                // materialized values must agree whenever they exist.
                if !idx.is_linear() {
                    prop_assert_eq!(idx.ipostdom(b), cfg.ipostdom(b));
                }
            }
            prop_assert_eq!(idx.reverse_postorder(), cfg.reverse_postorder());
            let loops = cfg.natural_loops(&p);
            prop_assert_eq!(idx.natural_loops(), loops.as_slice());
            // Regions agree modulo the index's sorted body representation.
            let walk = cfg.divergent_regions(&p);
            prop_assert_eq!(idx.divergent_regions().len(), walk.len());
            for (a, b) in idx.divergent_regions().iter().zip(&walk) {
                prop_assert_eq!(a.branch_block, b.branch_block);
                prop_assert_eq!(a.reconvergence, b.reconvergence);
                let mut body: Vec<BlockId> = b.body.iter().copied().collect();
                body.sort_unstable();
                prop_assert_eq!(&a.body, &body);
            }
        }

        #[test]
        fn summaries_match_instruction_walk(ast in arb_kernel(), fast in any::<bool>()) {
            let p = lower(&ast, Family::Pascal, LowerOptions { fast_math: fast });
            let idx = ProgramIndex::build(&p);
            for (block, s) in p.blocks.iter().zip(idx.summaries()) {
                prop_assert_eq!(s.instr_count, block.instrs.len());
                prop_assert_eq!(s.profile_tape.len(), block.instrs.len());
                prop_assert_eq!(s.mix_tape.len(), block.instrs.len() * 2);
                prop_assert_eq!(
                    s.has_ctrl(),
                    !matches!(block.term, Terminator::Ret)
                );
            }
        }
    }
}
