//! Instruction-mix counting.
//!
//! Two flavours, matching the paper's distinction:
//!
//! * [`static_mix`] — every static instruction counted once, the raw
//!   "instruction operations executed" a disassembler listing yields.
//! * [`expected_mix`] — instructions weighted by their block's symbolic
//!   execution frequency evaluated at a concrete [`LaunchGeometry`]. This
//!   is the paper's *predictive* static estimate of the dynamic mix: no
//!   execution happens, but loop structure and problem size are honoured.
//!
//! Counts are kept per [`OpClass`] (Table II row) and rolled up to the
//! four coarse classes `O_fl`, `O_mem`, `O_ctrl`, `O_reg` used by Eq. 6.

use crate::block::{Program, Terminator};
use oriole_arch::{InstrClass, OpClass, ALL_OP_CLASSES};
use std::fmt;
use std::ops::{Add, AddAssign};

/// Problem size and launch geometry: everything symbolic frequencies need
/// to become concrete numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchGeometry {
    /// Problem size `N`.
    pub n: u64,
    /// Threads per block (`TC`).
    pub tc: u32,
    /// Blocks in the grid (`BC`).
    pub bc: u32,
}

impl LaunchGeometry {
    /// Creates a geometry.
    pub const fn new(n: u64, tc: u32, bc: u32) -> Self {
        Self { n, tc, bc }
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        u64::from(self.tc) * u64::from(self.bc)
    }
}

impl fmt::Display for LaunchGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N={} TC={} BC={}", self.n, self.tc, self.bc)
    }
}

/// Per-[`OpClass`] instruction counts (fractional: expected counts can be
/// non-integral once branch probabilities weigh in).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MixCounts {
    counts: [f64; 15],
}

impl MixCounts {
    /// An empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `weight` occurrences of `op`.
    pub fn record(&mut self, op: OpClass, weight: f64) {
        self.counts[Self::index(op)] += weight;
    }

    /// Count for one operation class.
    pub fn get(&self, op: OpClass) -> f64 {
        self.counts[Self::index(op)]
    }

    fn index(op: OpClass) -> usize {
        ALL_OP_CLASSES
            .iter()
            .position(|&o| o == op)
            .expect("ALL_OP_CLASSES is exhaustive")
    }

    /// Iterates `(op_class, count)` pairs, including zeros.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, f64)> + '_ {
        ALL_OP_CLASSES.iter().map(move |&op| (op, self.get(op)))
    }

    /// Total operations across all classes.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Rolls fine-grained counts up to the four coarse classes.
    pub fn classes(&self) -> ClassMix {
        let mut m = ClassMix::default();
        for (op, c) in self.iter() {
            match op.class() {
                InstrClass::Flops => m.flops += c,
                InstrClass::Mem => m.mem += c,
                InstrClass::Ctrl => m.ctrl += c,
                InstrClass::Reg => m.reg += c,
            }
        }
        m
    }

    /// Scales every count by `k` (e.g. per-thread → whole-grid).
    pub fn scaled(&self, k: f64) -> MixCounts {
        let mut out = self.clone();
        for c in &mut out.counts {
            *c *= k;
        }
        out
    }
}

impl Add for MixCounts {
    type Output = MixCounts;
    fn add(mut self, rhs: MixCounts) -> MixCounts {
        self += rhs;
        self
    }
}

impl AddAssign for MixCounts {
    fn add_assign(&mut self, rhs: MixCounts) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *a += b;
        }
    }
}

/// The four coarse instruction-mix totals of §III-B:
/// `O_fl`, `O_mem`, `O_ctrl`, `O_reg`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassMix {
    /// Arithmetic operations (`O_fl`).
    pub flops: f64,
    /// Memory operations (`O_mem`).
    pub mem: f64,
    /// Control operations (`O_ctrl`).
    pub ctrl: f64,
    /// Register-file accesses (`O_reg`).
    pub reg: f64,
}

impl ClassMix {
    /// Total across the four classes.
    pub fn total(&self) -> f64 {
        self.flops + self.mem + self.ctrl + self.reg
    }

    /// Computational intensity: the ratio of floating-point to memory
    /// operations (Table VI's "Itns" column). Returns `f64::INFINITY`
    /// for kernels with no memory operations.
    pub fn intensity(&self) -> f64 {
        if self.mem == 0.0 {
            if self.flops == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.flops / self.mem
        }
    }

    /// Fractions of the total per class `(fl, mem, ctrl, reg)`; all zeros
    /// for an empty mix.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t == 0.0 {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            (self.flops / t, self.mem / t, self.ctrl / t, self.reg / t)
        }
    }
}

impl fmt::Display for ClassMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FLOPS={:.1} MEM={:.1} CTRL={:.1} REG={:.1} (intensity {:.2})",
            self.flops,
            self.mem,
            self.ctrl,
            self.reg,
            self.intensity()
        )
    }
}

/// Weight contributed by a terminator: branches and loop-backs issue one
/// control instruction; plain returns are folded into the `exit`
/// instruction lowering already emits.
fn terminator_ctrl_weight(term: &Terminator) -> f64 {
    match term {
        Terminator::Jump(_) | Terminator::CondBranch { .. } | Terminator::LoopBack { .. } => 1.0,
        Terminator::Ret => 0.0,
    }
}

/// Static instruction mix: each instruction counted once, regardless of
/// control flow — what a disassembly listing shows.
pub fn static_mix(program: &Program) -> MixCounts {
    let mut mix = MixCounts::new();
    for block in &program.blocks {
        for instr in &block.instrs {
            mix.record(instr.opcode.op_class(), 1.0);
            mix.record(OpClass::Regs, f64::from(instr.regfile_accesses()));
        }
        let ctrl = terminator_ctrl_weight(&block.term);
        if ctrl > 0.0 {
            mix.record(OpClass::CtrlIns, ctrl);
        }
    }
    mix
}

/// Expected per-thread dynamic mix, predicted statically: instructions
/// weighted by their block's symbolic frequency at `geom`, averaged over
/// threads (surplus grid-stride threads count fractionally).
pub fn expected_mix(program: &Program, geom: LaunchGeometry) -> MixCounts {
    let mut mix = MixCounts::new();
    for block in &program.blocks {
        let weight = block.freq.eval_expected(geom.n, geom.tc, geom.bc);
        if weight == 0.0 {
            continue;
        }
        for instr in &block.instrs {
            mix.record(instr.opcode.op_class(), weight);
            mix.record(OpClass::Regs, weight * f64::from(instr.regfile_accesses()));
        }
        let ctrl = terminator_ctrl_weight(&block.term);
        if ctrl > 0.0 {
            mix.record(OpClass::CtrlIns, ctrl * weight);
        }
    }
    mix
}

/// Convenience: lowers `ast` for `family` with default options and
/// returns its expected per-thread mix at `geom`. Equivalent to
/// `expected_mix(&lower(ast, family, default), geom)`.
pub fn expected_mix_of(
    ast: &crate::ast::KernelAst,
    family: oriole_arch::Family,
    geom: LaunchGeometry,
) -> MixCounts {
    let program = crate::lower::lower(ast, family, crate::lower::LowerOptions::default());
    expected_mix(&program, geom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AluOp, KernelAst, Loop, SizeExpr, Stmt, TripCount};
    use crate::lower::{lower, LowerOptions};
    use oriole_arch::Family;

    fn fma_loop_kernel() -> Program {
        let mut k = KernelAst::new("mixes");
        k.body = vec![Stmt::Loop(Loop {
            trip: TripCount::Size(SizeExpr::N),
            unrollable: true,
            body: vec![
                Stmt::load(crate::ast::MemSpace::Global, crate::ast::AccessPattern::Coalesced, 1),
                Stmt::ops(AluOp::FmaF32, 1),
            ],
        })];
        lower(&k, Family::Kepler, LowerOptions::default())
    }

    #[test]
    fn static_mix_counts_each_instruction_once() {
        let p = fma_loop_kernel();
        let mix = static_mix(&p);
        // Exactly one FMA and one load in the whole listing.
        assert_eq!(mix.get(OpClass::FpIns32), 1.0);
        assert_eq!(mix.get(OpClass::LdStIns), 1.0);
        // Register accesses accumulate across all instructions.
        assert!(mix.get(OpClass::Regs) > 5.0);
        // Terminators contribute control ops.
        assert!(mix.get(OpClass::CtrlIns) >= 2.0);
    }

    #[test]
    fn expected_mix_scales_with_n() {
        let p = fma_loop_kernel();
        let small = expected_mix(&p, LaunchGeometry::new(32, 128, 8));
        let large = expected_mix(&p, LaunchGeometry::new(64, 128, 8));
        // FMA executes once per loop iteration = N times per thread.
        assert_eq!(small.get(OpClass::FpIns32), 32.0);
        assert_eq!(large.get(OpClass::FpIns32), 64.0);
        // Total grows with N.
        assert!(large.total() > small.total());
    }

    #[test]
    fn class_rollup_and_intensity() {
        let p = fma_loop_kernel();
        let mix = expected_mix(&p, LaunchGeometry::new(128, 128, 8));
        let classes = mix.classes();
        assert!(classes.flops > 0.0);
        assert!(classes.mem > 0.0);
        assert!(classes.ctrl > 0.0);
        assert!(classes.reg > 0.0);
        // One FMA per load, plus integer address arithmetic in FLOPS;
        // intensity must be positive and finite here.
        let i = classes.intensity();
        assert!(i.is_finite() && i > 0.0);
        let (ffl, fmem, fctrl, freg) = classes.fractions();
        assert!((ffl + fmem + fctrl + freg - 1.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_edge_cases() {
        let zero = ClassMix::default();
        assert_eq!(zero.intensity(), 0.0);
        assert_eq!(zero.fractions(), (0.0, 0.0, 0.0, 0.0));
        let pure_compute = ClassMix { flops: 10.0, mem: 0.0, ctrl: 0.0, reg: 0.0 };
        assert!(pure_compute.intensity().is_infinite());
    }

    #[test]
    fn mix_arithmetic() {
        let mut a = MixCounts::new();
        a.record(OpClass::FpIns32, 2.0);
        let mut b = MixCounts::new();
        b.record(OpClass::FpIns32, 3.0);
        b.record(OpClass::LdStIns, 1.0);
        let c = a.clone() + b;
        assert_eq!(c.get(OpClass::FpIns32), 5.0);
        assert_eq!(c.get(OpClass::LdStIns), 1.0);
        let d = c.scaled(2.0);
        assert_eq!(d.get(OpClass::FpIns32), 10.0);
        assert_eq!(d.total(), 12.0);
    }

    #[test]
    fn geometry_helpers() {
        let g = LaunchGeometry::new(256, 128, 24);
        assert_eq!(g.total_threads(), 3072);
        assert!(g.to_string().contains("N=256"));
    }

    #[test]
    fn expected_mix_depends_on_geometry_for_grid_stride() {
        let mut k = KernelAst::new("gs");
        k.body = vec![Stmt::Loop(Loop {
            trip: TripCount::GridStride(SizeExpr::N2),
            unrollable: false,
            body: vec![Stmt::ops(AluOp::FmaF32, 1)],
        })];
        let p = lower(&k, Family::Maxwell, LowerOptions::default());
        // 64² = 4096 items. With 4096 threads → 1 iteration; with 1024
        // threads → 4 iterations.
        let wide = expected_mix(&p, LaunchGeometry::new(64, 512, 8));
        let narrow = expected_mix(&p, LaunchGeometry::new(64, 128, 8));
        assert_eq!(wide.get(OpClass::FpIns32), 1.0);
        assert_eq!(narrow.get(OpClass::FpIns32), 4.0);
    }
}
