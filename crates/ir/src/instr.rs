//! Instructions, registers and operands.

use crate::ast::AccessPattern;
use crate::isa::Opcode;
use std::fmt;

/// A virtual register. Lowering assigns them SSA-style (one definition per
/// register in straight-line runs); the codegen register allocator later
/// folds them onto a physical budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

/// A predicate register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pred(pub u32);

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%p{}", self.0)
    }
}

/// Built-in thread-geometry registers (a subset of PTX's special
/// registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// `%tid.x` — thread index within the block.
    TidX,
    /// `%ntid.x` — block size.
    NTidX,
    /// `%ctaid.x` — block index within the grid.
    CtaIdX,
    /// `%nctaid.x` — grid size in blocks.
    NCtaIdX,
}

impl SpecialReg {
    /// PTX spelling.
    pub fn name(self) -> &'static str {
        match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::NTidX => "%ntid.x",
            SpecialReg::CtaIdX => "%ctaid.x",
            SpecialReg::NCtaIdX => "%nctaid.x",
        }
    }

    /// Parses a PTX special-register spelling.
    pub fn parse(s: &str) -> Option<SpecialReg> {
        Some(match s {
            "%tid.x" => SpecialReg::TidX,
            "%ntid.x" => SpecialReg::NTidX,
            "%ctaid.x" => SpecialReg::CtaIdX,
            "%nctaid.x" => SpecialReg::NCtaIdX,
            _ => return None,
        })
    }

    /// Whether the value differs between threads of the same warp.
    /// Conditions computed from such registers are divergence candidates.
    pub fn thread_varying(self) -> bool {
        matches!(self, SpecialReg::TidX)
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Virtual register.
    Reg(Reg),
    /// Predicate register (as a value, e.g. for `selp`).
    Pred(Pred),
    /// Integer immediate.
    Imm(i64),
    /// Floating immediate.
    FImm(f64),
    /// Kernel parameter slot (pointer or scalar argument `%paramN`).
    Param(u16),
    /// Special register.
    Special(SpecialReg),
}

impl Operand {
    /// The register read by this operand, if it is one.
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Whether evaluating this operand touches the register file (used by
    /// the `O_reg` register-instruction counter).
    pub fn touches_regfile(self) -> bool {
        matches!(self, Operand::Reg(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Pred(p) => write!(f, "{p}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::FImm(v) => {
                // Keep a distinguishing suffix so the parser can tell
                // float immediates from integers; {:?} preserves all
                // significant digits.
                write!(f, "{:?}f", v)
            }
            Operand::Param(i) => write!(f, "%param{i}"),
            Operand::Special(s) => write!(f, "{s}"),
        }
    }
}

/// Memory-behaviour annotation carried by load/store instructions.
///
/// `nvdisasm` output does not carry this, but the paper's dynamic analysis
/// recovers access patterns from the CFG and addressing expressions; we
/// keep the information explicit instead of re-deriving it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemAnnot {
    /// Warp-level access pattern.
    pub pattern: AccessPattern,
}

/// One instruction: optional guard predicate, opcode, optional destination
/// and source operands.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Guard: execute only in lanes where the predicate holds
    /// (`@%p0 ...`). `Some((pred, false))` means a negated guard
    /// (`@!%p0`).
    pub guard: Option<(Pred, bool)>,
    /// The typed opcode.
    pub opcode: Opcode,
    /// Destination register (None for stores, barriers, ...).
    pub dst: Option<Reg>,
    /// Destination predicate (for `setp`).
    pub dst_pred: Option<Pred>,
    /// Source operands.
    pub srcs: Vec<Operand>,
    /// Memory annotation for loads/stores.
    pub mem: Option<MemAnnot>,
}

impl Instr {
    /// Creates a plain unguarded instruction.
    pub fn new(opcode: Opcode, dst: Option<Reg>, srcs: Vec<Operand>) -> Self {
        Self { guard: None, opcode, dst, dst_pred: None, srcs, mem: None }
    }

    /// Attaches a memory annotation (builder style).
    pub fn with_mem(mut self, pattern: AccessPattern) -> Self {
        self.mem = Some(MemAnnot { pattern });
        self
    }

    /// Attaches a guard predicate (builder style).
    pub fn guarded(mut self, pred: Pred, negated: bool) -> Self {
        self.guard = Some((pred, negated));
        self
    }

    /// Number of register-file accesses this instruction performs:
    /// destination write plus register source reads. This feeds the
    /// paper's `O_reg` ("Regs") counter.
    pub fn regfile_accesses(&self) -> u32 {
        let dst = u32::from(self.dst.is_some());
        let srcs = self.srcs.iter().filter(|o| o.touches_regfile()).count() as u32;
        dst + srcs
    }

    /// All registers read by this instruction.
    pub fn uses(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().filter_map(|o| o.as_reg())
    }

    /// The register written, if any.
    pub fn def(&self) -> Option<Reg> {
        self.dst
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some((p, neg)) = self.guard {
            write!(f, "@{}{} ", if neg { "!" } else { "" }, p)?;
        }
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        let sep = |f: &mut fmt::Formatter<'_>, first: &mut bool| -> fmt::Result {
            if *first {
                write!(f, " ")?;
                *first = false;
            } else {
                write!(f, ", ")?;
            }
            Ok(())
        };
        if let Some(p) = self.dst_pred {
            sep(f, &mut first)?;
            write!(f, "{p}")?;
        }
        if let Some(d) = self.dst {
            sep(f, &mut first)?;
            write!(f, "{d}")?;
        }
        for s in &self.srcs {
            sep(f, &mut first)?;
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{CmpOp, OpKind, Ty};

    #[test]
    fn regfile_access_counting() {
        // fma %r2, %r0, %r1, %r2 → 1 write + 3 reads = 4 accesses.
        let i = Instr::new(
            Opcode::new(OpKind::Fma, Ty::F32),
            Some(Reg(2)),
            vec![Operand::Reg(Reg(0)), Operand::Reg(Reg(1)), Operand::Reg(Reg(2))],
        );
        assert_eq!(i.regfile_accesses(), 4);
        // mov %r0, 7 → 1 write, immediate source.
        let i = Instr::new(
            Opcode::new(OpKind::Mov, Ty::S32),
            Some(Reg(0)),
            vec![Operand::Imm(7)],
        );
        assert_eq!(i.regfile_accesses(), 1);
        // st.global has no dst: only source reads count.
        let i = Instr::new(
            Opcode::new(OpKind::St(crate::ast::MemSpace::Global), Ty::F32),
            None,
            vec![Operand::Reg(Reg(3)), Operand::Reg(Reg(4))],
        );
        assert_eq!(i.regfile_accesses(), 2);
    }

    #[test]
    fn display_formats() {
        let i = Instr::new(
            Opcode::new(OpKind::Add, Ty::F32),
            Some(Reg(5)),
            vec![Operand::Reg(Reg(1)), Operand::FImm(1.5)],
        );
        assert_eq!(i.to_string(), "add.f32 %r5, %r1, 1.5f");

        let mut setp = Instr::new(
            Opcode::new(OpKind::Setp(CmpOp::Lt), Ty::S32),
            None,
            vec![Operand::Reg(Reg(0)), Operand::Special(SpecialReg::NTidX)],
        );
        setp.dst_pred = Some(Pred(0));
        assert_eq!(setp.to_string(), "setp.lt.s32 %p0, %r0, %ntid.x");

        let guarded = Instr::new(
            Opcode::new(OpKind::Mov, Ty::F32),
            Some(Reg(9)),
            vec![Operand::FImm(0.0)],
        )
        .guarded(Pred(1), true);
        assert_eq!(guarded.to_string(), "@!%p1 mov.f32 %r9, 0.0f");
    }

    #[test]
    fn uses_and_def() {
        let i = Instr::new(
            Opcode::new(OpKind::Mul, Ty::F32),
            Some(Reg(7)),
            vec![Operand::Reg(Reg(3)), Operand::Imm(2)],
        );
        assert_eq!(i.def(), Some(Reg(7)));
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![Reg(3)]);
    }

    #[test]
    fn special_register_parsing() {
        for s in [SpecialReg::TidX, SpecialReg::NTidX, SpecialReg::CtaIdX, SpecialReg::NCtaIdX] {
            assert_eq!(SpecialReg::parse(s.name()), Some(s));
        }
        assert_eq!(SpecialReg::parse("%tid.y"), None);
        assert!(SpecialReg::TidX.thread_varying());
        assert!(!SpecialReg::CtaIdX.thread_varying());
    }
}
