//! Textual disassembly: emitter and parser.
//!
//! The paper's analyzer consumes `nvdisasm` output rather than compiler
//! internals. We mirror that interface: [`emit`] renders a [`Program`] as
//! a stable, human-readable listing, and [`parse`] reconstructs the exact
//! program from it (`parse(emit(p)) == p`). The static analyzer operates
//! on parsed listings, keeping it honestly decoupled from the code
//! generator.
//!
//! Format sketch:
//!
//! ```text
//! // oriole disassembly v1
//! .kernel atax family=Kepler regs=27 smem=3072 spill=0
//! .block entry freq=once
//!   mov.u32 %r0, %tid.x
//!   ...
//!   term jump loop0
//! .block loop0 freq=mul(trip(gridstride(1.0*N^2)))
//!   ld.global.f32 %r9, %r8 !pattern=strided(64)
//!   ...
//!   term loopback loop0 after1 trip=size(1.0*N^1)
//! ```

use crate::ast::{AccessPattern, SizeExpr, TripCount};
use crate::block::{BasicBlock, BlockId, FreqExpr, Program, ProgramMeta, Terminator};
use crate::instr::{Instr, MemAnnot, Operand, Pred, Reg, SpecialReg};
use crate::isa::{OpKind, Opcode};
use oriole_arch::Family;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parse failure with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending input line.
    pub line: usize,
    /// Problem description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------
// Emission

/// Renders a program as a disassembly listing.
pub fn emit(program: &Program) -> String {
    let mut out = String::new();
    out.push_str("// oriole disassembly v1\n");
    let m = &program.meta;
    let _ = writeln!(
        out,
        ".kernel {} family={} regs={} smem={} spill={}",
        program.name, m.family, m.regs_per_thread, m.smem_static, m.spill_bytes
    );
    for block in &program.blocks {
        let _ = writeln!(out, ".block {} freq={}", block.label, emit_freq(&block.freq));
        for i in &block.instrs {
            let _ = writeln!(out, "  {}", emit_instr(i));
        }
        let _ = writeln!(out, "  term {}", emit_term(&block.term, program));
    }
    out
}

fn emit_freq(f: &FreqExpr) -> String {
    match f {
        FreqExpr::Once => "once".to_string(),
        FreqExpr::Const(c) => format!("const({c:?})"),
        FreqExpr::Trip(t) => format!("trip({})", emit_trip(*t)),
        FreqExpr::Fraction(p) => format!("frac({p:?})"),
        FreqExpr::DivFraction(p) => format!("dfrac({p:?})"),
        FreqExpr::Mul(fs) => {
            let parts: Vec<String> = fs.iter().map(emit_freq).collect();
            format!("mul({})", parts.join(","))
        }
    }
}

fn emit_trip(t: TripCount) -> String {
    match t {
        TripCount::Const(c) => format!("const({c})"),
        TripCount::Size(s) => format!("size({:?}*N^{})", s.coeff, s.power),
        TripCount::GridStride(s) => format!("gridstride({:?}*N^{})", s.coeff, s.power),
        TripCount::BlockShare(s) => format!("blockshare({:?}*N^{})", s.coeff, s.power),
    }
}

fn emit_pattern(p: AccessPattern) -> String {
    match p {
        AccessPattern::Coalesced => "coalesced".to_string(),
        AccessPattern::Strided(s) => format!("strided({s})"),
        AccessPattern::Random => "random".to_string(),
        AccessPattern::Broadcast => "broadcast".to_string(),
    }
}

fn emit_instr(i: &Instr) -> String {
    let mut s = i.to_string();
    if let Some(mem) = &i.mem {
        let _ = write!(s, " !pattern={}", emit_pattern(mem.pattern));
    }
    s
}

fn emit_term(t: &Terminator, program: &Program) -> String {
    let label = |b: BlockId| program.blocks[b.0 as usize].label.clone();
    match t {
        Terminator::Jump(b) => format!("jump {}", label(*b)),
        Terminator::CondBranch { pred, taken, fallthrough, divergent, taken_fraction } => {
            format!(
                "condbr {pred} {} {} divergent={divergent} taken={taken_fraction:?}",
                label(*taken),
                label(*fallthrough)
            )
        }
        Terminator::LoopBack { target, exit, trip } => {
            format!("loopback {} {} trip={}", label(*target), label(*exit), emit_trip(*trip))
        }
        Terminator::Ret => "ret".to_string(),
    }
}

// ---------------------------------------------------------------------
// Parsing

/// Parses a listing produced by [`emit`] back into a [`Program`].
pub fn parse(text: &str) -> Result<Program, ParseError> {
    Parser::new(text).run()
}

/// Terminator with unresolved labels (first parse pass).
enum RawTerm {
    Jump(String),
    CondBranch { pred: Pred, taken: String, fallthrough: String, divergent: bool, taken_fraction: f64 },
    LoopBack { target: String, exit: String, trip: TripCount },
    Ret,
}

struct RawBlock {
    label: String,
    freq: FreqExpr,
    instrs: Vec<Instr>,
    term: Option<(RawTerm, usize)>,
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    name: Option<String>,
    meta: Option<ProgramMeta>,
    blocks: Vec<RawBlock>,
}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError { line: line + 1, msg: msg.into() }
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { lines: text.lines().enumerate(), name: None, meta: None, blocks: Vec::new() }
    }

    fn run(mut self) -> Result<Program, ParseError> {
        while let Some((lineno, raw)) = self.lines.next() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            if let Some(rest) = line.strip_prefix(".kernel ") {
                self.parse_kernel_header(rest, lineno)?;
            } else if let Some(rest) = line.strip_prefix(".block ") {
                self.parse_block_header(rest, lineno)?;
            } else if let Some(rest) = line.strip_prefix("term ") {
                let block = self
                    .blocks
                    .last_mut()
                    .ok_or_else(|| err(lineno, "terminator outside a block"))?;
                if block.term.is_some() {
                    return Err(err(lineno, "block has two terminators"));
                }
                block.term = Some((parse_term(rest, lineno)?, lineno));
            } else {
                let instr = parse_instr(line, lineno)?;
                let block = self
                    .blocks
                    .last_mut()
                    .ok_or_else(|| err(lineno, "instruction outside a block"))?;
                if block.term.is_some() {
                    return Err(err(lineno, "instruction after terminator"));
                }
                block.instrs.push(instr);
            }
        }
        self.finish()
    }

    fn parse_kernel_header(&mut self, rest: &str, lineno: usize) -> Result<(), ParseError> {
        if self.name.is_some() {
            return Err(err(lineno, "second .kernel header"));
        }
        let mut tokens = rest.split_whitespace();
        let name = tokens.next().ok_or_else(|| err(lineno, "missing kernel name"))?;
        let mut family = None;
        let mut regs = None;
        let mut smem = None;
        let mut spill = None;
        for tok in tokens {
            let (key, value) =
                tok.split_once('=').ok_or_else(|| err(lineno, format!("bad attribute `{tok}`")))?;
            match key {
                "family" => {
                    family = Some(parse_family(value).ok_or_else(|| {
                        err(lineno, format!("unknown family `{value}`"))
                    })?)
                }
                "regs" => regs = Some(parse_num::<u32>(value, lineno)?),
                "smem" => smem = Some(parse_num::<u32>(value, lineno)?),
                "spill" => spill = Some(parse_num::<u32>(value, lineno)?),
                _ => return Err(err(lineno, format!("unknown kernel attribute `{key}`"))),
            }
        }
        self.name = Some(name.to_string());
        self.meta = Some(ProgramMeta {
            family: family.ok_or_else(|| err(lineno, "missing family="))?,
            regs_per_thread: regs.ok_or_else(|| err(lineno, "missing regs="))?,
            smem_static: smem.ok_or_else(|| err(lineno, "missing smem="))?,
            spill_bytes: spill.ok_or_else(|| err(lineno, "missing spill="))?,
        });
        Ok(())
    }

    fn parse_block_header(&mut self, rest: &str, lineno: usize) -> Result<(), ParseError> {
        let mut tokens = rest.split_whitespace();
        let label = tokens.next().ok_or_else(|| err(lineno, "missing block label"))?;
        let freq_tok = tokens.next().ok_or_else(|| err(lineno, "missing freq="))?;
        let freq_body = freq_tok
            .strip_prefix("freq=")
            .ok_or_else(|| err(lineno, "expected freq=..."))?;
        let freq = parse_freq(freq_body, lineno)?;
        self.blocks.push(RawBlock {
            label: label.to_string(),
            freq,
            instrs: Vec::new(),
            term: None,
        });
        Ok(())
    }

    fn finish(self) -> Result<Program, ParseError> {
        let name = self.name.ok_or_else(|| err(0, "no .kernel header"))?;
        let meta = self.meta.expect("meta set with name");
        let label_ids: HashMap<String, BlockId> = self
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.label.clone(), BlockId(i as u32)))
            .collect();
        if label_ids.len() != self.blocks.len() {
            return Err(err(0, "duplicate block labels"));
        }
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for raw in self.blocks {
            let (raw_term, term_line) = raw
                .term
                .ok_or_else(|| err(0, format!("block `{}` has no terminator", raw.label)))?;
            let resolve = |label: &str| {
                label_ids
                    .get(label)
                    .copied()
                    .ok_or_else(|| err(term_line, format!("unknown label `{label}`")))
            };
            let term = match raw_term {
                RawTerm::Jump(l) => Terminator::Jump(resolve(&l)?),
                RawTerm::CondBranch { pred, taken, fallthrough, divergent, taken_fraction } => {
                    Terminator::CondBranch {
                        pred,
                        taken: resolve(&taken)?,
                        fallthrough: resolve(&fallthrough)?,
                        divergent,
                        taken_fraction,
                    }
                }
                RawTerm::LoopBack { target, exit, trip } => Terminator::LoopBack {
                    target: resolve(&target)?,
                    exit: resolve(&exit)?,
                    trip,
                },
                RawTerm::Ret => Terminator::Ret,
            };
            blocks.push(BasicBlock { label: raw.label, instrs: raw.instrs, term, freq: raw.freq });
        }
        let program = Program { name, meta, blocks: blocks.into() };
        let problems = program.validate();
        if let Some(p) = problems.first() {
            return Err(err(0, format!("ill-formed program: {p}")));
        }
        Ok(program)
    }
}

fn parse_family(s: &str) -> Option<Family> {
    Some(match s {
        "Fermi" => Family::Fermi,
        "Kepler" => Family::Kepler,
        "Maxwell" => Family::Maxwell,
        "Pascal" => Family::Pascal,
        _ => return None,
    })
}

fn parse_num<T: std::str::FromStr>(s: &str, lineno: usize) -> Result<T, ParseError> {
    s.parse().map_err(|_| err(lineno, format!("bad number `{s}`")))
}

/// Splits `head(inner)` and returns `(head, inner)`, balancing parens.
fn split_call(s: &str) -> Option<(&str, &str)> {
    let open = s.find('(')?;
    if !s.ends_with(')') {
        return None;
    }
    Some((&s[..open], &s[open + 1..s.len() - 1]))
}

/// Splits a comma-separated list at the top parenthesis level.
fn split_top_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

fn parse_freq(s: &str, lineno: usize) -> Result<FreqExpr, ParseError> {
    if s == "once" {
        return Ok(FreqExpr::Once);
    }
    let (head, inner) =
        split_call(s).ok_or_else(|| err(lineno, format!("bad freq `{s}`")))?;
    match head {
        "const" => Ok(FreqExpr::Const(parse_num(inner, lineno)?)),
        "frac" => Ok(FreqExpr::Fraction(parse_num(inner, lineno)?)),
        "dfrac" => Ok(FreqExpr::DivFraction(parse_num(inner, lineno)?)),
        "trip" => Ok(FreqExpr::Trip(parse_trip(inner, lineno)?)),
        "mul" => {
            let parts = split_top_commas(inner);
            let factors: Result<Vec<FreqExpr>, ParseError> =
                parts.iter().map(|p| parse_freq(p.trim(), lineno)).collect();
            Ok(FreqExpr::Mul(factors?))
        }
        _ => Err(err(lineno, format!("unknown freq constructor `{head}`"))),
    }
}

fn parse_trip(s: &str, lineno: usize) -> Result<TripCount, ParseError> {
    let (head, inner) =
        split_call(s).ok_or_else(|| err(lineno, format!("bad trip `{s}`")))?;
    match head {
        "const" => Ok(TripCount::Const(parse_num(inner, lineno)?)),
        "size" => Ok(TripCount::Size(parse_size_expr(inner, lineno)?)),
        "gridstride" => Ok(TripCount::GridStride(parse_size_expr(inner, lineno)?)),
        "blockshare" => Ok(TripCount::BlockShare(parse_size_expr(inner, lineno)?)),
        _ => Err(err(lineno, format!("unknown trip constructor `{head}`"))),
    }
}

fn parse_size_expr(s: &str, lineno: usize) -> Result<SizeExpr, ParseError> {
    // Shape: `<coeff>*N^<power>`.
    let (coeff_s, rest) = s
        .split_once("*N^")
        .ok_or_else(|| err(lineno, format!("bad size expr `{s}`")))?;
    Ok(SizeExpr { coeff: parse_num(coeff_s, lineno)?, power: parse_num(rest, lineno)? })
}

fn parse_pattern(s: &str, lineno: usize) -> Result<AccessPattern, ParseError> {
    if s == "coalesced" {
        return Ok(AccessPattern::Coalesced);
    }
    if s == "random" {
        return Ok(AccessPattern::Random);
    }
    if s == "broadcast" {
        return Ok(AccessPattern::Broadcast);
    }
    if let Some((head, inner)) = split_call(s) {
        if head == "strided" {
            return Ok(AccessPattern::Strided(parse_num(inner, lineno)?));
        }
    }
    Err(err(lineno, format!("unknown access pattern `{s}`")))
}

fn parse_term(rest: &str, lineno: usize) -> Result<RawTerm, ParseError> {
    let mut tokens = rest.split_whitespace();
    let kind = tokens.next().ok_or_else(|| err(lineno, "empty terminator"))?;
    match kind {
        "ret" => Ok(RawTerm::Ret),
        "jump" => {
            let target = tokens.next().ok_or_else(|| err(lineno, "jump needs a target"))?;
            Ok(RawTerm::Jump(target.to_string()))
        }
        "condbr" => {
            let pred_tok = tokens.next().ok_or_else(|| err(lineno, "condbr needs predicate"))?;
            let pred = parse_pred(pred_tok, lineno)?;
            let taken = tokens.next().ok_or_else(|| err(lineno, "condbr needs taken label"))?;
            let fall =
                tokens.next().ok_or_else(|| err(lineno, "condbr needs fallthrough label"))?;
            let mut divergent = None;
            let mut fraction = None;
            for tok in tokens {
                let (k, v) = tok
                    .split_once('=')
                    .ok_or_else(|| err(lineno, format!("bad condbr attribute `{tok}`")))?;
                match k {
                    "divergent" => divergent = Some(parse_num::<bool>(v, lineno)?),
                    "taken" => fraction = Some(parse_num::<f64>(v, lineno)?),
                    _ => return Err(err(lineno, format!("unknown condbr attribute `{k}`"))),
                }
            }
            Ok(RawTerm::CondBranch {
                pred,
                taken: taken.to_string(),
                fallthrough: fall.to_string(),
                divergent: divergent.ok_or_else(|| err(lineno, "missing divergent="))?,
                taken_fraction: fraction.ok_or_else(|| err(lineno, "missing taken="))?,
            })
        }
        "loopback" => {
            let target = tokens.next().ok_or_else(|| err(lineno, "loopback needs target"))?;
            let exit = tokens.next().ok_or_else(|| err(lineno, "loopback needs exit"))?;
            let trip_tok = tokens.next().ok_or_else(|| err(lineno, "loopback needs trip="))?;
            let trip_body = trip_tok
                .strip_prefix("trip=")
                .ok_or_else(|| err(lineno, "expected trip=..."))?;
            Ok(RawTerm::LoopBack {
                target: target.to_string(),
                exit: exit.to_string(),
                trip: parse_trip(trip_body, lineno)?,
            })
        }
        _ => Err(err(lineno, format!("unknown terminator `{kind}`"))),
    }
}

fn parse_reg(s: &str, lineno: usize) -> Result<Reg, ParseError> {
    s.strip_prefix("%r")
        .and_then(|n| n.parse().ok())
        .map(Reg)
        .ok_or_else(|| err(lineno, format!("bad register `{s}`")))
}

fn parse_pred(s: &str, lineno: usize) -> Result<Pred, ParseError> {
    s.strip_prefix("%p")
        .and_then(|n| n.parse().ok())
        .map(Pred)
        .ok_or_else(|| err(lineno, format!("bad predicate `{s}`")))
}

fn parse_operand(s: &str, lineno: usize) -> Result<Operand, ParseError> {
    if let Some(sp) = SpecialReg::parse(s) {
        return Ok(Operand::Special(sp));
    }
    if let Some(rest) = s.strip_prefix("%param") {
        return rest
            .parse()
            .map(Operand::Param)
            .map_err(|_| err(lineno, format!("bad param `{s}`")));
    }
    if s.starts_with("%p") {
        return parse_pred(s, lineno).map(Operand::Pred);
    }
    if s.starts_with("%r") {
        return parse_reg(s, lineno).map(Operand::Reg);
    }
    if let Some(fs) = s.strip_suffix('f') {
        if let Ok(v) = fs.parse::<f64>() {
            return Ok(Operand::FImm(v));
        }
    }
    if let Ok(v) = s.parse::<i64>() {
        return Ok(Operand::Imm(v));
    }
    Err(err(lineno, format!("bad operand `{s}`")))
}

fn parse_instr(line: &str, lineno: usize) -> Result<Instr, ParseError> {
    let mut rest = line.trim();
    // Optional guard: `@%p0` or `@!%p0`.
    let mut guard = None;
    if let Some(stripped) = rest.strip_prefix('@') {
        let (guard_tok, after) = stripped
            .split_once(' ')
            .ok_or_else(|| err(lineno, "guard without instruction"))?;
        let (neg, pred_str) = match guard_tok.strip_prefix('!') {
            Some(p) => (true, p),
            None => (false, guard_tok),
        };
        guard = Some((parse_pred(pred_str, lineno)?, neg));
        rest = after.trim();
    }
    // Optional trailing memory annotation.
    let mut mem = None;
    if let Some(idx) = rest.find(" !pattern=") {
        let pattern_str = &rest[idx + " !pattern=".len()..];
        mem = Some(MemAnnot { pattern: parse_pattern(pattern_str.trim(), lineno)? });
        rest = rest[..idx].trim_end();
    }
    // Mnemonic, then comma-separated operands.
    let (mn, ops_str) = match rest.split_once(' ') {
        Some((m, o)) => (m, o.trim()),
        None => (rest, ""),
    };
    let opcode = Opcode::from_mnemonic(mn)
        .ok_or_else(|| err(lineno, format!("unknown mnemonic `{mn}`")))?;
    let mut operands = Vec::new();
    if !ops_str.is_empty() {
        for part in ops_str.split(',') {
            operands.push(parse_operand(part.trim(), lineno)?);
        }
    }
    // Distribute operands into dst / dst_pred / srcs by opcode shape.
    let mut instr = Instr::new(opcode, None, Vec::new());
    instr.guard = guard;
    instr.mem = mem;
    let mut ops = operands.into_iter();
    match opcode.kind {
        OpKind::Setp(_) => {
            match ops.next() {
                Some(Operand::Pred(p)) => instr.dst_pred = Some(p),
                other => {
                    return Err(err(
                        lineno,
                        format!("setp needs a predicate destination, got {other:?}"),
                    ))
                }
            }
            instr.srcs = ops.collect();
        }
        OpKind::St(_) | OpKind::Bar | OpKind::Bra | OpKind::Exit => {
            instr.srcs = ops.collect();
        }
        _ => {
            match ops.next() {
                Some(Operand::Reg(r)) => instr.dst = Some(r),
                None => {}
                other => {
                    return Err(err(
                        lineno,
                        format!("expected register destination, got {other:?}"),
                    ))
                }
            }
            instr.srcs = ops.collect();
        }
    }
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{
        AluOp, Branch, DivergenceKind, KernelAst, Loop, MemSpace, Stmt,
    };
    use crate::lower::{lower, LowerOptions};

    fn roundtrip(p: &Program) {
        let text = emit(p);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(&parsed, p, "round-trip mismatch:\n{text}");
    }

    #[test]
    fn roundtrip_straight_line() {
        let mut k = KernelAst::new("flat");
        k.body = vec![Stmt::ops(AluOp::FmaF32, 2)];
        let p = lower(&k, Family::Kepler, LowerOptions::default());
        roundtrip(&p);
    }

    #[test]
    fn roundtrip_loops_and_branches() {
        let mut k = KernelAst::new("full");
        k.body = vec![
            Stmt::load(MemSpace::Global, AccessPattern::Strided(128), 1),
            Stmt::Loop(Loop {
                trip: TripCount::GridStride(SizeExpr::new(2.0, 2)),
                unrollable: false,
                body: vec![
                    Stmt::Loop(Loop {
                        trip: TripCount::Size(SizeExpr::N),
                        unrollable: true,
                        body: vec![
                            Stmt::load(MemSpace::Shared, AccessPattern::Broadcast, 1),
                            Stmt::ops(AluOp::FmaF32, 1),
                        ],
                    }),
                    Stmt::If(Branch {
                        divergence: DivergenceKind::ThreadDependent,
                        taken_fraction: 0.125,
                        then_body: vec![Stmt::store(
                            MemSpace::Global,
                            AccessPattern::Coalesced,
                            1,
                        )],
                        else_body: vec![Stmt::ops(AluOp::SinCosF32, 1)],
                    }),
                    Stmt::SyncThreads,
                ],
            }),
        ];
        let p = lower(&k, Family::Maxwell, LowerOptions { fast_math: true });
        roundtrip(&p);
    }

    #[test]
    fn roundtrip_all_families() {
        for family in Family::ALL {
            let mut k = KernelAst::new("fam");
            k.body = vec![Stmt::ops(AluOp::DivF32, 1), Stmt::ops(AluOp::Cvt64, 1)];
            let p = lower(&k, family, LowerOptions::default());
            roundtrip(&p);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("nonsense").is_err());
        let no_term = "\
// oriole disassembly v1
.kernel k family=Kepler regs=0 smem=0 spill=0
.block entry freq=once
  add.f32 %r0, %r1, %r2
";
        assert!(parse(no_term).is_err());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "\
// oriole disassembly v1
.kernel k family=Kepler regs=0 smem=0 spill=0
.block entry freq=once
  frobnicate.f32 %r0
  term ret
";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.msg.contains("frobnicate"));
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn parse_rejects_unknown_label() {
        let text = "\
.kernel k family=Kepler regs=0 smem=0 spill=0
.block entry freq=once
  term jump nowhere
";
        let e = parse(text).unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn parse_rejects_duplicate_labels() {
        let text = "\
.kernel k family=Kepler regs=0 smem=0 spill=0
.block entry freq=once
  term jump entry2
.block entry2 freq=once
  term ret
.block entry2 freq=once
  term ret
";
        assert!(parse(text).is_err());
    }

    #[test]
    fn parse_rejects_bad_family_and_missing_attrs() {
        assert!(parse(".kernel k family=Volta regs=0 smem=0 spill=0").is_err());
        assert!(parse(".kernel k regs=0 smem=0 spill=0").is_err());
    }

    #[test]
    fn freq_expressions_roundtrip() {
        let exprs = [
            FreqExpr::Once,
            FreqExpr::Const(2.5),
            FreqExpr::Fraction(0.3333333333333333),
            FreqExpr::Trip(TripCount::Const(17)),
            FreqExpr::Trip(TripCount::Size(SizeExpr::new(0.5, 3))),
            FreqExpr::Mul(vec![
                FreqExpr::Trip(TripCount::GridStride(SizeExpr::N2)),
                FreqExpr::Fraction(0.1),
                FreqExpr::Mul(vec![FreqExpr::Const(4.0), FreqExpr::Once]),
            ]),
        ];
        for e in &exprs {
            let text = emit_freq(e);
            let parsed = parse_freq(&text, 0).unwrap_or_else(|x| panic!("{x}: {text}"));
            assert_eq!(&parsed, e, "{text}");
        }
    }

    #[test]
    fn handcrafted_listing_parses() {
        let text = "\
// comment
.kernel demo family=Fermi regs=12 smem=1024 spill=4

.block entry freq=once
  mov.u32 %r0, %tid.x
  setp.lt.s32 %p0, %r0, 128
  term condbr %p0 hot cold divergent=true taken=0.5
.block hot freq=frac(0.5)
  ld.global.f32 %r1, %r0 !pattern=coalesced
  term jump done
.block cold freq=frac(0.5)
  @!%p0 mov.f32 %r2, 1.0f
  term jump done
.block done freq=once
  st.global.f32 %r0, %r1 !pattern=strided(32)
  exit
  term ret
";
        let p = parse(text).expect("parses");
        assert_eq!(p.name, "demo");
        assert_eq!(p.meta.regs_per_thread, 12);
        assert_eq!(p.meta.spill_bytes, 4);
        assert_eq!(p.blocks.len(), 4);
        assert_eq!(p.blocks[2].instrs[0].guard, Some((Pred(0), true)));
        assert_eq!(
            p.blocks[3].instrs[0].mem,
            Some(MemAnnot { pattern: AccessPattern::Strided(32) })
        );
        // Emit → parse again is stable.
        roundtrip(&p);
    }
}
