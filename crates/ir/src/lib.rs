//! # oriole-ir — kernel program representation
//!
//! This crate provides the program representations that stand in for CUDA
//! source, PTX, and `nvdisasm` output in the paper's pipeline:
//!
//! * [`ast`] — a structured kernel AST (loop nests, branches, arithmetic
//!   and memory statements) with *symbolic* trip counts parameterized by
//!   problem size `N` and launch geometry. This is the form the Orio-style
//!   transformations (unrolling, fast-math) operate on.
//! * [`isa`] / [`instr`] / [`block`] — a PTX-like linear ISA: typed
//!   opcodes, virtual registers, predicates, basic blocks with symbolic
//!   execution frequencies, terminators carrying divergence metadata.
//! * [`lower`] — deterministic lowering from the AST to the linear IR,
//!   including address arithmetic, loop bookkeeping and barrier placement
//!   (what `nvcc` would have produced for us).
//! * [`cfg`] — control-flow graph construction, dominators,
//!   post-dominators, natural-loop detection and divergent-region
//!   analysis.
//! * [`index`] — the per-lowered-program [`ProgramIndex`] artifact:
//!   Vec-indexed CFG, precomputed loops/divergent regions, and per-block
//!   summary tapes, built once per front-end artifact and shared by every
//!   analysis phase (with a branch-free fast path for linear programs).
//! * [`text`] — a textual "disassembly" format with a full parser, so the
//!   static analyzer can consume programs the way the paper's tool
//!   consumes `nvdisasm` output (emit → parse round-trips exactly).
//! * [`count`] — static and frequency-weighted instruction-mix counting,
//!   the raw material of the paper's §III-B metrics.
//!
//! The representation is deliberately *resource-faithful* rather than
//! value-faithful: it records which operations execute, in what order,
//! touching which address spaces with which access patterns — everything
//! the static analyzer and the timing simulator observe — without
//! carrying actual data values.

#![warn(missing_docs)]

pub mod ast;
pub mod block;
pub mod cfg;
pub mod count;
pub mod index;
pub mod instr;
pub mod isa;
pub mod lower;
pub mod text;

pub use ast::{
    shared_bytes_for_block, AccessPattern, AluOp, Branch, DivergenceKind, KernelAst, Loop,
    MemSpace, MemStmt, OpStmt, SharedDecl, SizeExpr, Stmt, TripCount,
};
pub use block::{BasicBlock, BlockArena, BlockId, FreqExpr, Program, ProgramMeta, Terminator};
pub use cfg::{Cfg, DivergentRegion, NaturalLoop};
pub use count::{expected_mix, expected_mix_of, static_mix, ClassMix, LaunchGeometry, MixCounts};
pub use index::{BlockSummary, DivRegion, ProfileEvent, ProgramIndex, TermClass};
pub use instr::{Instr, MemAnnot, Operand, Pred, Reg, SpecialReg};
pub use isa::{CmpOp, OpKind, Opcode, Ty};
pub use lower::{lower, lower_indexed};
pub use text::{emit, parse, ParseError};
