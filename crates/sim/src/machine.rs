//! The whole-GPU timing model.
//!
//! [`simulate`] assembles the per-warp profile, the occupancy result and
//! the work-distribution geometry into a roofline-style completion time:
//!
//! ```text
//! T_exec = max( issue-throughput bound over the busy SMs,
//!               dependent-chain latency bound of the busiest warps )
//! T      = max( T_exec, device DRAM bandwidth bound )
//!          + block dispatch + kernel launch overhead
//! ```
//!
//! The busy-SM accounting is what reproduces the paper's Fig. 4 shape:
//! grid-stride kernels with fewer work items than threads occupy only the
//! leading `⌈items/TC⌉` blocks, so at small `N` a 1024-thread block puts
//! the entire kernel on a single SM while a 64-thread block spreads it
//! over sixteen.

use crate::config::SimConfig;
use crate::profile::WarpProfile;
use oriole_arch::{occupancy, Family, Limiter, Occupancy, OccupancyInput};
use oriole_codegen::{CompiledKernel, PreferredL1};
use std::fmt;

/// Which roofline bound determined the execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// SM issue throughput (including LSU replays).
    Issue,
    /// Dependent-chain latency exposure.
    Latency,
    /// Device DRAM bandwidth.
    Bandwidth,
}

impl fmt::Display for BoundKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BoundKind::Issue => "issue",
            BoundKind::Latency => "latency",
            BoundKind::Bandwidth => "bandwidth",
        };
        f.write_str(s)
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration cannot launch: occupancy is zero.
    Infeasible {
        /// The binding resource that zeroed occupancy.
        limiter: Limiter,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Infeasible { limiter } => {
                write!(f, "launch infeasible: zero active blocks (limiter {limiter:?})")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of one simulated kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Modelled wall-clock time in milliseconds (noise-free).
    pub time_ms: f64,
    /// The dominating roofline bound.
    pub bound: BoundKind,
    /// Occupancy details used for the run.
    pub occupancy: Occupancy,
    /// Blocks that actually carry work items.
    pub busy_blocks: u32,
    /// SMs hosting busy blocks.
    pub busy_sms: u32,
    /// Resident warps per busy SM.
    pub resident_warps: u32,
    /// Execution waves (block batches per SM slot).
    pub waves: u32,
    /// Total execution cycles (before launch overhead).
    pub cycles: f64,
    /// Per-warp profile used by the model.
    pub profile: WarpProfile,
}

/// Effective shared memory per SM under the `PL` split.
///
/// Fermi and Kepler carve a 64 KiB array into L1 + shared
/// (`PreferL1` = 48 K L1 leaves 16 K shared); Maxwell and Pascal have
/// dedicated shared memory, so `PL` only sizes the L1.
pub fn effective_shmem_per_mp(family: Family, pl: PreferredL1, default_shmem: u32) -> u32 {
    match family {
        Family::Fermi | Family::Kepler => 64 * 1024 - pl.l1_bytes(),
        Family::Maxwell | Family::Pascal => default_shmem,
    }
}

/// The occupancy-calculator input of one compiled kernel's launch —
/// the single feasibility gate every [`TimingModel`](crate::TimingModel)
/// backend shares, so a configuration is infeasible under one backend
/// iff it is infeasible under all of them.
pub(crate) fn occ_input_of(kernel: &CompiledKernel) -> OccupancyInput {
    OccupancyInput {
        tc: kernel.params.tc,
        regs_per_thread: kernel.regs_per_thread(),
        smem_per_block: kernel.smem_per_block,
        shmem_per_mp: Some(effective_shmem_per_mp(
            kernel.gpu.family,
            kernel.params.pl,
            kernel.gpu.shmem_per_mp,
        )),
    }
}

/// Largest grid-stride item count in the program, i.e. how much
/// parallelism the kernel actually exposes at problem size `n`
/// (`None` when the kernel has no grid-stride loop). Served from the
/// kernel's shared index — the stride expressions were collected once at
/// front-end time.
fn grid_items(kernel: &CompiledKernel, n: u64) -> Option<f64> {
    kernel.index.grid_stride_items(n)
}

/// Simulates one execution with the family-default [`SimConfig`].
///
/// Thin wrapper over the single model implementation also backing
/// [`ModelContext::simulate`](crate::ModelContext::simulate); the
/// context-backed path is bit-identical (property-tested) and memoizes.
pub fn simulate(kernel: &CompiledKernel, n: u64) -> Result<SimReport, SimError> {
    simulate_with(kernel, n, &SimConfig::for_family(kernel.gpu.family))
}

/// Simulates one execution with an explicit configuration (used by
/// ablation benches).
pub fn simulate_with(
    kernel: &CompiledKernel,
    n: u64,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    simulate_via(kernel, n, cfg, &|input| occupancy(&kernel.gpu, input))
}

/// The whole timing model with the occupancy calculation supplied by the
/// caller — the direct calculator for the free functions, a device
/// [`OccupancyTable`](oriole_arch::OccupancyTable) lookup for
/// [`ModelContext`](crate::ModelContext). Both providers are
/// bit-identical, so every path through here produces identical reports.
pub(crate) fn simulate_via(
    kernel: &CompiledKernel,
    n: u64,
    cfg: &SimConfig,
    occ_of: &dyn Fn(OccupancyInput) -> Occupancy,
) -> Result<SimReport, SimError> {
    let spec = &kernel.gpu;
    let params = kernel.params;

    let occ = occ_of(occ_input_of(kernel));
    if occ.active_blocks == 0 {
        return Err(SimError::Infeasible { limiter: occ.limiter });
    }

    let threads = f64::from(params.tc) * f64::from(params.bc);
    let items = grid_items(kernel, n).unwrap_or(threads);
    let busy_threads = threads.min(items.max(1.0));
    let busy_blocks = (busy_threads / f64::from(params.tc)).ceil().max(1.0) as u32;
    let busy_blocks = busy_blocks.min(params.bc);
    let wb = spec.warps_per_block(params.tc);
    // All warps of busy blocks are resident and schedule, even those
    // whose lanes all fail the range guard; the per-warp profile below is
    // the average over exactly this population.
    let resident_warps_total = f64::from(busy_blocks) * f64::from(wb);

    let mp = spec.multiprocessors;
    let busy_sms = busy_blocks.min(mp);
    let slots = occ.active_blocks * mp;
    let waves = busy_blocks.div_ceil(slots).max(1);
    let blocks_per_sm = busy_blocks.div_ceil(waves * busy_sms).min(occ.active_blocks);
    let resident_warps = (blocks_per_sm * wb).min(spec.warps_per_mp);

    // Per-busy-warp profile: weights evaluated at the busy geometry,
    // replayed from the kernel's shared index.
    let profile = WarpProfile::extract_with(
        &kernel.index,
        &kernel.program,
        cfg,
        n,
        params.tc,
        busy_blocks.max(1),
    );

    // Synchronization / divergence surcharges (per warp).
    let barrier_cost =
        profile.barriers * (cfg.barrier_base_cycles + cfg.barrier_per_warp_cycles * f64::from(wb));
    let reconv_cost = profile.divergent_branches * cfg.reconvergence_cycles;
    let warp_issue = profile.issue_cycles + barrier_cost + reconv_cost;

    // Issue-throughput bound: every resident warp's issue work, spread
    // over the busy SMs. An SM only approaches peak issue rate with
    // enough resident warps to cover dependency stalls; below that the
    // schedulers starve (the low-occupancy penalty).
    let issue_efficiency = {
        let w = f64::from(resident_warps).max(1.0);
        w / (w + cfg.issue_warmup.max(0.0))
    };
    let t_issue = warp_issue * resident_warps_total / f64::from(busy_sms) / issue_efficiency;

    // Latency bound: the dependent chain of one warp, with memory stalls
    // hidden by the other resident warps (×) the warp's own memory-level
    // parallelism; waves serialize.
    let mlp = f64::from(resident_warps).max(1.0) * cfg.warp_mlp.max(1.0);
    let exposed_per_op = profile.avg_latency() / mlp;
    let rounds = (resident_warps_total / (f64::from(resident_warps) * f64::from(busy_sms)))
        .ceil()
        .max(1.0);
    let t_lat = rounds * (warp_issue + profile.mem_ops * exposed_per_op);

    // Device bandwidth bound.
    let t_bw =
        profile.dram_transactions * resident_warps_total * cfg.dram_cycles_per_transaction;

    let t_exec = t_issue.max(t_lat);
    let (mut cycles, bound) = if t_bw > t_exec {
        (t_bw, BoundKind::Bandwidth)
    } else if t_lat > t_issue {
        (t_lat, BoundKind::Latency)
    } else {
        (t_issue, BoundKind::Issue)
    };

    // Every block of the grid — busy or idle — costs dispatch work on
    // the GigaThread engine; idle blocks at least run their range guard.
    cycles += f64::from(params.bc.div_ceil(mp)) * cfg.block_dispatch_cycles;

    let clock_hz = f64::from(spec.gpu_clock_mhz) * 1e6;
    let launch_us =
        cfg.launch_overhead_us + cfg.stream_overhead_us * f64::from(params.sc.saturating_sub(1));
    let time_ms = cycles / clock_hz * 1e3 + launch_us / 1e3;

    Ok(SimReport {
        time_ms,
        bound,
        occupancy: occ,
        busy_blocks,
        busy_sms,
        resident_warps,
        waves,
        cycles,
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_codegen::{compile, TuningParams};
    use oriole_kernels::KernelId;

    fn run(kid: KernelId, gpu: Gpu, n: u64, tc: u32, bc: u32) -> SimReport {
        let ast = kid.ast(n);
        let kernel = compile(&ast, gpu.spec(), TuningParams::with_geometry(tc, bc)).unwrap();
        simulate(&kernel, n).unwrap()
    }

    #[test]
    fn all_kernels_simulate_on_all_gpus() {
        for kid in oriole_kernels::ALL_KERNELS {
            for gpu in oriole_arch::ALL_GPUS {
                let n = kid.input_sizes()[2];
                let r = run(kid, gpu, n, 128, 48);
                assert!(r.time_ms.is_finite() && r.time_ms > 0.0, "{kid} {gpu}");
                assert!(r.occupancy.active_blocks > 0);
            }
        }
    }

    #[test]
    fn atax_prefers_small_blocks() {
        // The paper's headline Fig. 4 behaviour: at N≤512 ATAX's work
        // fits in few blocks, so small TC spreads it over more SMs.
        for gpu in [Gpu::K20, Gpu::M2050] {
            let small = run(KernelId::Atax, gpu, 512, 128, 48);
            let large = run(KernelId::Atax, gpu, 512, 896, 48);
            assert!(
                small.time_ms * 1.3 < large.time_ms,
                "{gpu}: TC=128 {:.3}ms !< TC=896 {:.3}ms",
                small.time_ms,
                large.time_ms
            );
        }
    }

    #[test]
    fn matvec2d_prefers_large_blocks() {
        for gpu in [Gpu::K20, Gpu::M2050] {
            let small = run(KernelId::MatVec2D, gpu, 512, 32, 48);
            let large = run(KernelId::MatVec2D, gpu, 512, 672, 48);
            assert!(
                large.time_ms < small.time_ms,
                "{gpu}: TC=672 {:.3}ms !< TC=32 {:.3}ms",
                large.time_ms,
                small.time_ms
            );
        }
    }

    #[test]
    fn bicg_tracks_atax_preference() {
        let small = run(KernelId::Bicg, Gpu::K20, 512, 128, 48);
        let large = run(KernelId::Bicg, Gpu::K20, 512, 896, 48);
        assert!(small.time_ms < large.time_ms);
    }

    #[test]
    fn ex14fj_not_hurt_by_large_blocks() {
        // N³ cells saturate the device; large blocks amortize dispatch.
        let r_small = run(KernelId::Ex14Fj, Gpu::K20, 64, 64, 96);
        let r_large = run(KernelId::Ex14Fj, Gpu::K20, 64, 512, 96);
        assert!(r_large.time_ms <= r_small.time_ms * 1.1);
    }

    #[test]
    fn time_scales_with_problem_size() {
        for kid in oriole_kernels::ALL_KERNELS {
            let sizes = kid.input_sizes();
            let t_small = run(kid, Gpu::M40, sizes[0], 128, 48).time_ms;
            let t_large = run(kid, Gpu::M40, sizes[4], 128, 48).time_ms;
            assert!(t_large > t_small, "{kid}: {t_large} !> {t_small}");
        }
    }

    #[test]
    fn work_concentration_reported() {
        // ATAX at N=128 with TC=1024: a single busy block on one SM.
        let r = run(KernelId::Atax, Gpu::K20, 128, 1024, 48);
        assert_eq!(r.busy_blocks, 1);
        assert_eq!(r.busy_sms, 1);
        // With TC=32: four busy blocks.
        let r = run(KernelId::Atax, Gpu::K20, 128, 32, 48);
        assert_eq!(r.busy_blocks, 4);
        assert_eq!(r.busy_sms, 4);
    }

    #[test]
    fn strided_kernel_is_issue_or_bandwidth_bound() {
        let r = run(KernelId::Atax, Gpu::K20, 512, 128, 48);
        assert!(matches!(r.bound, BoundKind::Issue | BoundKind::Bandwidth), "{:?}", r.bound);
    }

    #[test]
    fn infeasible_configuration_errors() {
        // 40 KiB shared per block with PreferL1 (16 K shared) on Kepler:
        // zero blocks fit.
        let mut ast = KernelId::MatVec2D.ast(64);
        ast.shared[0].elems = 10 * 1024 / 4; // 10 KiB per thread would overflow; use fixed
        ast.shared[0].scales_with_block = false;
        ast.shared[0].elems = 40 * 1024 / 4;
        let mut params = TuningParams::with_geometry(128, 48);
        params.pl = oriole_codegen::PreferredL1::Kb48;
        let kernel = compile(&ast, Gpu::K20.spec(), params).unwrap();
        let err = simulate(&kernel, 64).unwrap_err();
        assert!(matches!(err, SimError::Infeasible { limiter: Limiter::SharedMem }));
    }

    #[test]
    fn pl_split_changes_occupancy_on_kepler_not_maxwell() {
        // 12 KiB/block kernel: Kepler PreferL1 leaves 16 K shared → 1
        // block; PreferShared leaves 48 K → 4 blocks. Maxwell's dedicated
        // 96 K is indifferent.
        let mut ast = KernelId::MatVec2D.ast(64);
        ast.shared.truncate(1);
        ast.shared[0].scales_with_block = false;
        ast.shared[0].elems = 12 * 1024 / 4;
        let mk = |gpu: Gpu, pl| {
            let mut p = TuningParams::with_geometry(256, 48);
            p.pl = pl;
            let k = compile(&ast, gpu.spec(), p).unwrap();
            simulate(&k, 64).unwrap().occupancy.active_blocks
        };
        assert_eq!(mk(Gpu::K20, PreferredL1::Kb16), 4);
        assert_eq!(mk(Gpu::K20, PreferredL1::Kb48), 1);
        assert_eq!(mk(Gpu::M40, PreferredL1::Kb16), mk(Gpu::M40, PreferredL1::Kb48));
    }

    #[test]
    fn divergence_costs_time() {
        // Same kernel, higher boundary fraction (smaller N normalized per
        // cell) → worse per-cell time.
        let per_cell = |n: u64| {
            let r = run(KernelId::Ex14Fj, Gpu::M40, n, 256, 96);
            r.time_ms / (n * n * n) as f64
        };
        // N=8 (58% boundary, heavy divergence) vs N=64 (9%).
        assert!(per_cell(8) > per_cell(64));
    }

    #[test]
    fn stream_count_adds_overhead() {
        let ast = KernelId::Atax.ast(128);
        let mut p1 = TuningParams::with_geometry(128, 48);
        let mut p5 = p1;
        p1.sc = 1;
        p5.sc = 5;
        let k1 = compile(&ast, Gpu::K20.spec(), p1).unwrap();
        let k5 = compile(&ast, Gpu::K20.spec(), p5).unwrap();
        let t1 = simulate(&k1, 128).unwrap().time_ms;
        let t5 = simulate(&k5, 128).unwrap().time_ms;
        assert!(t5 > t1);
    }

    #[test]
    fn effective_shmem_rules() {
        assert_eq!(
            effective_shmem_per_mp(Family::Kepler, PreferredL1::Kb48, 49_152),
            16 * 1024
        );
        assert_eq!(
            effective_shmem_per_mp(Family::Kepler, PreferredL1::Kb16, 49_152),
            48 * 1024
        );
        assert_eq!(
            effective_shmem_per_mp(Family::Maxwell, PreferredL1::Kb48, 98_304),
            98_304
        );
    }
}
