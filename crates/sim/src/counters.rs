//! Dynamic instruction counters.
//!
//! The "dynamic analysis" side of the paper: what a profiler counts when
//! the kernel actually runs. Counts integrate *warp-level* execution
//! weights — divergent branch sides execute whenever any lane takes them,
//! and every issued warp instruction occupies 32 thread slots regardless
//! of the active mask. The static analyzer's estimate
//! ([`oriole_ir::expected_mix`]) integrates thread-level weights instead;
//! the gap between the two is exactly what the paper's Table VI reports
//! as estimation error.

use oriole_arch::OpClass;
use oriole_codegen::CompiledKernel;
use oriole_ir::MixCounts;

/// Whole-grid dynamic instruction mix for one execution at problem size
/// `n` (thread-slot granularity: warp executions × 32).
///
/// Unlike the static estimator's fractional thread-level expectation,
/// this integrates what actually issues:
///
/// * only the *busy* leading blocks execute loop bodies; their warps run
///   whole (ceil-quantized) grid-stride iterations — the boundary warp
///   does a full extra round even when only one lane needs it;
/// * idle surplus blocks still issue their prologue and range guard;
/// * divergent branch sides execute whenever any lane takes them.
///
/// The gap between this and [`oriole_ir::expected_mix`] is the paper's
/// Table VI estimation error.
pub fn dynamic_mix(kernel: &CompiledKernel, n: u64) -> MixCounts {
    let index = &kernel.index;
    let params = kernel.params;
    let (tc, bc) = (params.tc, params.bc);
    let threads = f64::from(tc) * f64::from(bc);
    // Work items exposed by the kernel's grid-stride loops (precomputed
    // by the index at front-end time).
    let items = index.grid_stride_items(n).unwrap_or(threads);
    let busy_threads = threads.min(items.max(1.0));
    let busy_blocks = ((busy_threads / f64::from(tc)).ceil().max(1.0) as u32).min(bc);
    let idle_blocks = bc - busy_blocks;
    let wb = f64::from(tc.div_ceil(32));
    let busy_warps = f64::from(busy_blocks) * wb;
    let idle_warps = f64::from(idle_blocks) * wb;

    // Divergence-free programs have warp saturation exactly 1.0 in every
    // block; skipping the three frequency evaluations per block is
    // bit-identical (`x * 1.0 == x` bitwise).
    let saturated = !index.divergence_fast_path();

    let mut mix = MixCounts::new();
    for (block, s) in kernel.program.blocks.iter().zip(index.summaries()) {
        // Busy warps: ceil-quantized warp-level execution at the busy
        // geometry, with divergence saturation applied on top.
        let mut w_busy = block.freq.eval(n, tc, busy_blocks.max(1));
        if saturated {
            w_busy *= warp_saturation(block, n, tc, busy_blocks.max(1));
        }
        // Idle warps: prologue/guard work only — evaluate with the
        // problem size zeroed so every data loop contributes nothing.
        let w_idle = block.freq.eval_expected(0, tc, bc);
        let slots = (w_busy * busy_warps + w_idle * idle_warps) * 32.0;
        if slots <= 0.0 {
            continue;
        }
        for &(class, m) in &s.mix_tape {
            mix.record(class, slots * m);
        }
        if s.has_ctrl() {
            mix.record(OpClass::CtrlIns, slots);
        }
    }
    mix
}

/// The pre-index walk-based implementation, retained as the oracle the
/// proptests compare against.
#[cfg(test)]
pub(crate) fn dynamic_mix_walk(kernel: &CompiledKernel, n: u64) -> MixCounts {
    use oriole_ir::{Terminator, TripCount};
    let params = kernel.params;
    let (tc, bc) = (params.tc, params.bc);
    let threads = f64::from(tc) * f64::from(bc);
    let items = kernel
        .program
        .blocks
        .iter()
        .filter_map(|b| match &b.term {
            Terminator::LoopBack { trip: TripCount::GridStride(s), .. } => Some(s.eval(n)),
            _ => None,
        })
        .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.max(v))))
        .unwrap_or(threads);
    let busy_threads = threads.min(items.max(1.0));
    let busy_blocks = ((busy_threads / f64::from(tc)).ceil().max(1.0) as u32).min(bc);
    let idle_blocks = bc - busy_blocks;
    let wb = f64::from(tc.div_ceil(32));
    let busy_warps = f64::from(busy_blocks) * wb;
    let idle_warps = f64::from(idle_blocks) * wb;

    let mut mix = MixCounts::new();
    for block in &kernel.program.blocks {
        let w_busy = block.freq.eval(n, tc, busy_blocks.max(1))
            * warp_saturation(block, n, tc, busy_blocks.max(1));
        let w_idle = block.freq.eval_expected(0, tc, bc);
        let slots = (w_busy * busy_warps + w_idle * idle_warps) * 32.0;
        if slots <= 0.0 {
            continue;
        }
        for instr in &block.instrs {
            mix.record(instr.opcode.op_class(), slots);
            mix.record(OpClass::Regs, slots * f64::from(instr.regfile_accesses()));
        }
        match &block.term {
            Terminator::Jump(_) | Terminator::CondBranch { .. } | Terminator::LoopBack { .. } => {
                mix.record(OpClass::CtrlIns, slots);
            }
            Terminator::Ret => {}
        }
    }
    mix
}

/// Ratio of warp-level to thread-level branch weights for a block
/// (≥ 1; captures divergence saturation independently of trip counts).
fn warp_saturation(block: &oriole_ir::BasicBlock, n: u64, tc: u32, bc: u32) -> f64 {
    let thread = block.freq.eval(n, tc, bc);
    let warp = block.freq.eval_warp(n, tc, bc);
    let thread_frac = block.freq.eval_expected(n, tc, bc);
    if thread <= 0.0 || thread_frac <= 0.0 {
        return 1.0;
    }
    // eval_warp uses fractional trips; isolate the fraction-saturation
    // component by comparing against eval_expected (same trip semantics).
    (warp / thread_frac).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_codegen::{compile, TuningParams};
    use oriole_ir::{expected_mix, LaunchGeometry};
    use oriole_kernels::KernelId;

    fn kernel(kid: KernelId, n: u64, tc: u32, bc: u32) -> CompiledKernel {
        compile(&kid.ast(n), Gpu::K20.spec(), TuningParams::with_geometry(tc, bc)).unwrap()
    }

    #[test]
    fn dynamic_counts_scale_with_n() {
        let k_small = kernel(KernelId::Atax, 64, 128, 48);
        let k_large = kernel(KernelId::Atax, 512, 128, 48);
        let small = dynamic_mix(&k_small, 64).total();
        let large = dynamic_mix(&k_large, 512).total();
        // O(N²) work: 64× more at 8× the size. The observed ratio sits
        // well below 64 because dynamic counts include idle-block guards
        // and boundary-warp quantization, which loom large at N=64.
        assert!(large > small * 15.0, "{large} vs {small}");
    }

    #[test]
    fn static_estimate_tracks_dynamic_for_straight_kernels() {
        // ATAX has no divergence: thread-level and warp-level weights
        // agree, so the per-class fractions must match closely.
        let k = kernel(KernelId::Atax, 128, 128, 48);
        let geom = LaunchGeometry::new(128, 128, 48);
        let dynamic = dynamic_mix(&k, 128).classes();
        let threads = geom.total_threads() as f64;
        let stat = expected_mix(&k.program, geom).scaled(threads).classes();
        let (df, dm, _, _) = dynamic.fractions();
        let (sf, sm, _, _) = stat.fractions();
        assert!((df - sf).abs() < 0.02, "flops {df} vs {sf}");
        assert!((dm - sm).abs() < 0.02, "mem {dm} vs {sm}");
    }

    #[test]
    fn divergence_inflates_dynamic_counts() {
        // ex14FJ at small N diverges heavily: warps execute both the
        // boundary and interior paths, so dynamic FLOPS exceed the
        // thread-level static estimate.
        let k = kernel(KernelId::Ex14Fj, 8, 128, 48);
        let geom = LaunchGeometry::new(8, 128, 48);
        let dynamic = dynamic_mix(&k, 8).classes();
        let stat = expected_mix(&k.program, geom)
            .scaled(geom.total_threads() as f64)
            .classes();
        assert!(
            dynamic.flops > stat.flops * 1.3,
            "dynamic {} !>> static {}",
            dynamic.flops,
            stat.flops
        );
    }

    #[test]
    fn register_class_dominates_totals() {
        // Every instruction touches the register file several times, so
        // O_reg is the largest class (paper Table V's large register
        // instruction counts).
        let k = kernel(KernelId::MatVec2D, 128, 256, 48);
        let classes = dynamic_mix(&k, 128).classes();
        assert!(classes.reg > classes.flops);
        assert!(classes.reg > classes.mem);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testgen::{arb_kernel, arb_params};
    use oriole_arch::Gpu;
    use oriole_codegen::compile;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn indexed_dynamic_mix_bit_identical(
            ast in arb_kernel(),
            params in arb_params(),
            n in 1u64..256,
        ) {
            let kernel = compile(&ast, Gpu::K20.spec(), params).expect("valid point");
            prop_assert_eq!(dynamic_mix(&kernel, n), dynamic_mix_walk(&kernel, n));
        }
    }
}
