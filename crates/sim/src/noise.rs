//! Measurement noise and the paper's trial protocol.
//!
//! §IV-A: "For each code variant, the experiment was repeated ten times,
//! and the fifth overall trial time was selected." This module supplies
//! seeded multiplicative noise around the model time and the
//! trial-selection protocol, so experiments exercise the same
//! noise-robustness machinery real autotuners need — while remaining
//! reproducible run-to-run.

use crate::config::SimConfig;
use crate::machine::{simulate_with, SimError, SimReport};
use oriole_codegen::CompiledKernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a single representative time is chosen from repeated trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrialProtocol {
    /// The paper's protocol: the fifth trial of ten (index 4).
    #[default]
    FifthOfTen,
    /// Median of all trials.
    Median,
    /// Minimum of all trials.
    Min,
}

/// A set of repeated measurements of one variant.
#[derive(Debug, Clone, PartialEq)]
pub struct Trials {
    /// Trial times in milliseconds, in execution order.
    pub times_ms: Vec<f64>,
    /// The noise-free model report (identical across trials).
    pub report: SimReport,
}

impl Trials {
    /// The representative time under `protocol`.
    pub fn selected(&self, protocol: TrialProtocol) -> f64 {
        match protocol {
            TrialProtocol::FifthOfTen => {
                if self.times_ms.len() >= 5 {
                    self.times_ms[4]
                } else {
                    self.median()
                }
            }
            TrialProtocol::Median => self.median(),
            TrialProtocol::Min => {
                self.times_ms.iter().copied().fold(f64::INFINITY, f64::min)
            }
        }
    }

    fn median(&self) -> f64 {
        let mut sorted = self.times_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        sorted[sorted.len() / 2]
    }
}

/// Standard-normal sample via Box–Muller (avoids a rand_distr
/// dependency).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Runs `trials` noisy measurements of `kernel` at problem size `n`.
///
/// The seed makes the noise sequence reproducible; different variants
/// should pass different seeds (the evaluation layer derives them from
/// the tuning-point hash).
pub fn measure(
    kernel: &CompiledKernel,
    n: u64,
    trials: u32,
    seed: u64,
) -> Result<Trials, SimError> {
    let cfg = SimConfig::for_family(kernel.gpu.family);
    measure_with(kernel, n, trials, seed, &cfg)
}

/// [`measure`] with an explicit simulator configuration.
pub fn measure_with(
    kernel: &CompiledKernel,
    n: u64,
    trials: u32,
    seed: u64,
    cfg: &SimConfig,
) -> Result<Trials, SimError> {
    let report = simulate_with(kernel, n, cfg)?;
    let times_ms = noisy_trials(&report, trials, seed, cfg);
    Ok(Trials { times_ms, report })
}

/// The seeded noise sequence around one noise-free report — shared by
/// the free-function path above and the memoizing
/// [`ModelContext::measure`](crate::ModelContext::measure) path, which
/// reuses a cached report but must reproduce the exact same trials.
pub(crate) fn noisy_trials(report: &SimReport, trials: u32, seed: u64, cfg: &SimConfig) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..trials.max(1))
        .map(|_| {
            let eps = standard_normal(&mut rng) * cfg.noise_sigma;
            // Multiplicative noise, clamped to stay positive and bounded.
            report.time_ms * (1.0 + eps.clamp(-0.3, 0.3))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_codegen::{compile, TuningParams};
    use oriole_kernels::KernelId;

    fn kernel() -> CompiledKernel {
        compile(
            &KernelId::Atax.ast(128),
            Gpu::K20.spec(),
            TuningParams::with_geometry(128, 48),
        )
        .unwrap()
    }

    #[test]
    fn deterministic_given_seed() {
        let k = kernel();
        let a = measure(&k, 128, 10, 7).unwrap();
        let b = measure(&k, 128, 10, 7).unwrap();
        assert_eq!(a.times_ms, b.times_ms);
        let c = measure(&k, 128, 10, 8).unwrap();
        assert_ne!(a.times_ms, c.times_ms);
    }

    #[test]
    fn noise_is_bounded_and_centered() {
        let k = kernel();
        let t = measure(&k, 128, 200, 3).unwrap();
        let base = t.report.time_ms;
        let mean: f64 = t.times_ms.iter().sum::<f64>() / t.times_ms.len() as f64;
        assert!((mean / base - 1.0).abs() < 0.01, "mean drifted: {mean} vs {base}");
        for &x in &t.times_ms {
            assert!(x > 0.0 && (x / base - 1.0).abs() <= 0.3);
        }
    }

    #[test]
    fn protocols_select_sensibly() {
        let k = kernel();
        let t = measure(&k, 128, 10, 11).unwrap();
        assert_eq!(t.selected(TrialProtocol::FifthOfTen), t.times_ms[4]);
        let min = t.selected(TrialProtocol::Min);
        assert!(t.times_ms.iter().all(|&x| x >= min));
        let med = t.selected(TrialProtocol::Median);
        let below = t.times_ms.iter().filter(|&&x| x <= med).count();
        assert!(below >= t.times_ms.len() / 2);
    }

    #[test]
    fn fifth_of_ten_falls_back_for_short_runs() {
        let k = kernel();
        let t = measure(&k, 128, 3, 1).unwrap();
        let sel = t.selected(TrialProtocol::FifthOfTen);
        assert!(t.times_ms.contains(&sel));
    }

    #[test]
    fn noise_does_not_change_large_rankings() {
        // The noise floor (σ=1%) must not flip a 30% performance gap.
        let fast = compile(
            &KernelId::Atax.ast(512),
            Gpu::K20.spec(),
            TuningParams::with_geometry(128, 48),
        )
        .unwrap();
        let slow = compile(
            &KernelId::Atax.ast(512),
            Gpu::K20.spec(),
            TuningParams::with_geometry(1024, 48),
        )
        .unwrap();
        for seed in 0..20 {
            let tf = measure(&fast, 512, 10, seed).unwrap().selected(TrialProtocol::FifthOfTen);
            let ts = measure(&slow, 512, 10, seed + 1000)
                .unwrap()
                .selected(TrialProtocol::FifthOfTen);
            assert!(tf < ts, "seed {seed}: {tf} !< {ts}");
        }
    }
}
