//! A sharded map of write-once values with in-flight deduplication and
//! exact hit/miss counting — the concurrency primitive under the model
//! context's caches and the tuner's evaluation tiers.
//!
//! This lives in `oriole-sim` (the lowest crate that needs it) so the
//! layers above share one implementation; `oriole-arch`'s
//! [`OccupancyTable`](oriole_arch::OccupancyTable) deliberately does
//! *not* use it — its values are `Copy` results of trivial arithmetic,
//! where recomputing on a cold race is cheaper than blocking on a cell.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shard count. A power of two comfortably above typical worker counts
/// keeps lock contention negligible without wasting memory.
const SHARDS: usize = 32;

/// A sharded map of write-once values with in-flight deduplication:
/// the first caller of [`ShardedOnceMap::get_or_init`] for a key
/// computes the value while any concurrent callers for the same key
/// block on its [`OnceLock`]; later callers clone the cached value
/// without recomputation.
pub struct ShardedOnceMap<K, V> {
    shards: Vec<Mutex<HashMap<K, Arc<OnceLock<V>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> Default for ShardedOnceMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V: Clone> ShardedOnceMap<K, V> {
    /// An empty map.
    pub fn new() -> ShardedOnceMap<K, V> {
        ShardedOnceMap {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// Returns the value for `key`, computing it with `init` exactly
    /// once across all threads. `init` runs outside the shard lock, so
    /// slow computations only block callers of the *same* key.
    pub fn get_or_init(&self, key: K, init: impl FnOnce() -> V) -> V {
        let cell = {
            let mut shard = self.shards[Self::shard_of(&key)]
                .lock()
                .expect("memoization never poisons locks");
            Arc::clone(shard.entry(key).or_default())
        };
        let mut computed = false;
        let value = cell
            .get_or_init(|| {
                computed = true;
                init()
            })
            .clone();
        // Exact counting: only the caller whose closure ran counts a
        // miss, so misses equal values computed even under racing cold
        // lookups (a racer blocked on the cell counts as a hit).
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// `(hits, misses)` since construction; misses equal the number of
    /// `init` closures actually run.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_in_flight_and_counts_exactly() {
        let map: ShardedOnceMap<u32, u64> = ShardedOnceMap::new();
        let computed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for k in 0..16u32 {
                        let v = map.get_or_init(k, || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            u64::from(k) * 3
                        });
                        assert_eq!(v, u64::from(k) * 3);
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 16, "each key computed once");
        let (hits, misses) = map.counters();
        assert_eq!(misses, 16);
        assert_eq!(hits + misses, 8 * 16);
    }
}
