//! # oriole-sim — the GPU execution simulator
//!
//! This crate stands in for the physical GPUs of the paper's evaluation:
//! it is the *empirical* side of autotuning, producing the measurements
//! that exhaustive search ranks and against which the static analyzer's
//! predictions are validated.
//!
//! The model is an analytic warp/SM roofline with the mechanisms the
//! paper's narrative depends on (§II-A, §III-B):
//!
//! * **Occupancy-limited residency** — active blocks per SM come from the
//!   occupancy calculator ([`oriole_arch::occupancy()`]), so register
//!   pressure (UIF), shared-memory footprint (TC-scaled tiles) and the
//!   L1/shared split (PL) all change how many warps can hide latency.
//! * **Issue-throughput bound** — every instruction costs
//!   `32 / IPC(class)` SM issue cycles (Table II); uncoalesced accesses
//!   replay in the load/store unit once per memory transaction, which is
//!   what makes strided kernels (ATAX/BiCG row walks) throughput-bound.
//! * **Latency bound** — a warp's dependent chain exposes
//!   `L / active_warps` cycles per memory operation; few resident warps
//!   (tiny blocks on latency-sensitive kernels) expose DRAM latency.
//! * **Device bandwidth bound** — total DRAM transactions cost device
//!   cycles regardless of how work is distributed.
//! * **Work concentration** — grid-stride kernels with fewer items than
//!   threads only occupy the leading blocks; large blocks then
//!   concentrate all work on one or two SMs (the reason small-`N` matrix
//!   kernels favour small blocks — Fig. 4's key effect).
//! * **Divergence serialization** — warps execute both sides of
//!   thread-dependent branches (warp-level weights saturate), plus a
//!   reconvergence penalty (Fig. 1).
//! * **Barriers, block dispatch, launch overhead, measurement noise** —
//!   with the paper's 10-trials/take-the-5th protocol ([`noise`]).
//!
//! Absolute times are *model* times; the reproduction targets relative
//! behaviour (which configurations win, by roughly what factor).
//!
//! Everything here is pure in its inputs. [`ModelContext`] ([`context`])
//! is the per-`(device, timing model)` memoized form — occupancy table,
//! dynamic-mix memo, `SimReport` cache — that evaluation layers share;
//! the free functions stay as thin wrappers over the same
//! implementation under the default backend, property-tested
//! bit-identical.
//!
//! The abstract machine is one of several cost models: [`model`]
//! defines the [`TimingModel`] seam with the default
//! [`SimulatorModel`], the static Eq. 6 [`StaticPredictModel`] and the
//! analytic [`RooflineModel`], all selectable per context (and, through
//! the layers above, per evaluator and per CLI invocation via
//! `--model`).

#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod counters;
pub mod machine;
pub mod memo;
pub mod model;
pub mod noise;
pub mod profile;

#[cfg(test)]
pub(crate) mod testgen;

pub use config::SimConfig;
pub use context::{ModelContext, ModelStats, ProgramKey};
pub use counters::dynamic_mix;
pub use machine::{simulate, simulate_with, BoundKind, SimError, SimReport};
pub use model::{
    ModelEnv, ModelId, RooflineModel, SimulatorModel, StaticPredictModel, TimingModel,
};
pub use noise::{measure, measure_with, TrialProtocol, Trials};
pub use profile::WarpProfile;
