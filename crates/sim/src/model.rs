//! Pluggable timing-model backends: one seam, several cost models.
//!
//! The paper evaluates two predictors against each other — the abstract
//! machine of [`machine`](crate::machine) ("empirical" measurements)
//! and the static Eq. 6 CPI model — and related work adds more
//! (hardware-counter models, wave/roofline analytics). [`TimingModel`]
//! is the seam that lets all of them run behind the *same* memoized,
//! content-addressed evaluation stack: a backend estimates a
//! [`SimReport`]-shaped cost from a [`CompiledKernel`] + its launch
//! point + the problem size `n`, and carries a stable [`ModelId`] that
//! participates in every cache key above it (the
//! [`ModelContext`](crate::ModelContext) report cache, the tuner's
//! measurement tiers, the process-level artifact store), so cached
//! artifacts can never alias across backends.
//!
//! Three backends ship:
//!
//! * [`SimulatorModel`] — the default: the full abstract machine
//!   (issue/latency/bandwidth rooflines, work concentration,
//!   divergence, barriers). The crate's free functions
//!   ([`simulate`](crate::simulate), [`measure`](crate::measure)) stay
//!   thin wrappers over exactly this backend, property-tested
//!   bit-identical.
//! * [`StaticPredictModel`] — Eq. 6 via
//!   [`oriole_core::predict::predict_time_with`]: a purely static CPI ×
//!   expected-mix dot product, no dynamic profiling. Output is in model
//!   units, not milliseconds — rankings and Fig. 5-style normalized
//!   series are the meaningful quantities.
//! * [`RooflineModel`] — a classic throughput/bandwidth roofline from
//!   the [`oriole_arch`] Table II issue rates and the DRAM bandwidth
//!   constants, derated by achieved occupancy from the device
//!   [`OccupancyTable`]. Unlike the simulator it models no latency
//!   bound, work concentration, or divergence/barrier surcharges.
//!
//! All backends share one launch-feasibility gate
//! ([`ModelEnv::launch_occupancy`]): a configuration with zero active
//! blocks is [`SimError::Infeasible`] under every model, so backends
//! disagree about *cost*, never about *launchability*.
//!
//! Select a backend with `ModelContext::for_model`, the tuner's
//! `EvalProtocol::model` field, or the CLI's
//! `--model {sim,static,roofline}`; `oriole-cli models` lists them.

use crate::config::SimConfig;
use crate::machine::{occ_input_of, simulate_via, BoundKind, SimError, SimReport};
use crate::profile::WarpProfile;
use oriole_arch::{GpuSpec, Occupancy, OccupancyTable};
use oriole_codegen::CompiledKernel;
use std::fmt;

/// Stable identity of a timing-model backend.
///
/// Part of every cache key above the model layer (report caches,
/// measurement tiers, artifact-store scopes), so two backends can
/// never serve each other's cached estimates. The `Default` is the
/// full simulator — the backend the free functions wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum ModelId {
    /// The abstract-machine simulator (default; the paper's "empirical"
    /// side).
    #[default]
    Simulator,
    /// The static Eq. 6 CPI predictor (no dynamic profiling).
    Static,
    /// The analytic throughput/bandwidth roofline.
    Roofline,
}

impl ModelId {
    /// Every backend, in listing order (the simulator first).
    pub const ALL: [ModelId; 3] = [ModelId::Simulator, ModelId::Static, ModelId::Roofline];

    /// The canonical CLI name (`--model <name>`).
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Simulator => "sim",
            ModelId::Static => "static",
            ModelId::Roofline => "roofline",
        }
    }

    /// One-line description for the `models` listing.
    pub fn describe(self) -> &'static str {
        match self {
            ModelId::Simulator => {
                "abstract-machine simulator: issue/latency/bandwidth rooflines, \
                 work concentration, divergence (default)"
            }
            ModelId::Static => {
                "Eq. 6 static CPI model over the expected instruction mix; \
                 model units, no dynamic profiling"
            }
            ModelId::Roofline => {
                "throughput/bandwidth roofline derated by achieved occupancy; \
                 no latency or divergence modelling"
            }
        }
    }

    /// Parses a CLI spelling (case-insensitive; accepts the canonical
    /// names plus a few aliases).
    pub fn parse(name: &str) -> Option<ModelId> {
        match name.trim().to_ascii_lowercase().as_str() {
            "sim" | "simulator" | "machine" => Some(ModelId::Simulator),
            "static" | "eq6" | "predict" => Some(ModelId::Static),
            "roofline" | "roof" => Some(ModelId::Roofline),
            _ => None,
        }
    }

    /// Constructs the backend this id names.
    pub fn backend(self) -> Box<dyn TimingModel> {
        match self {
            ModelId::Simulator => Box::new(SimulatorModel),
            ModelId::Static => Box::new(StaticPredictModel),
            ModelId::Roofline => Box::new(RooflineModel),
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The device services an estimate runs against: the target spec, the
/// simulator timing constants, and the context's memoized occupancy
/// table. Backends receive it per call so they stay stateless and one
/// [`ModelContext`](crate::ModelContext) can own any of them.
pub struct ModelEnv<'a> {
    /// Target device.
    pub spec: &'a GpuSpec,
    /// Timing constants (family defaults unless the context was built
    /// for an ablation).
    pub cfg: &'a SimConfig,
    /// The context's quantized occupancy table.
    pub occ: &'a OccupancyTable,
}

impl ModelEnv<'_> {
    /// The launch-feasibility gate shared by every backend: the
    /// kernel's occupancy point (memoized), or
    /// [`SimError::Infeasible`] when zero blocks fit. Identical inputs
    /// to the simulator's own gate, so feasibility never depends on the
    /// selected backend.
    pub fn launch_occupancy(&self, kernel: &CompiledKernel) -> Result<Occupancy, SimError> {
        let occ = self.occ.lookup(occ_input_of(kernel));
        if occ.active_blocks == 0 {
            return Err(SimError::Infeasible { limiter: occ.limiter });
        }
        Ok(occ)
    }
}

/// A cost-model backend: estimates one kernel execution.
///
/// Implementations must be pure in `(env, kernel, n)` — the context
/// memoizes estimates by content-addressed program key, tuning point
/// and size, and replays cached values verbatim.
pub trait TimingModel: Send + Sync {
    /// The stable identity used in cache keys and telemetry.
    fn id(&self) -> ModelId;

    /// Estimates one execution of `kernel` at problem size `n`.
    fn estimate(
        &self,
        env: &ModelEnv<'_>,
        kernel: &CompiledKernel,
        n: u64,
    ) -> Result<SimReport, SimError>;
}

/// The default backend: the full abstract machine of
/// [`machine`](crate::machine), with occupancy served from the
/// context's table. Bit-identical to the [`simulate`](crate::simulate)
/// free function (property-tested in `tests/proptests.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatorModel;

impl TimingModel for SimulatorModel {
    fn id(&self) -> ModelId {
        ModelId::Simulator
    }

    fn estimate(
        &self,
        env: &ModelEnv<'_>,
        kernel: &CompiledKernel,
        n: u64,
    ) -> Result<SimReport, SimError> {
        simulate_via(kernel, n, env.cfg, &|input| env.occ.lookup(input))
    }
}

/// The Eq. 6 backend: wraps
/// [`oriole_core::predict::predict_time_indexed`] — the paper's purely
/// static CPI × expected-mix predictor, replayed from the kernel's
/// shared program index — behind the model seam.
///
/// The report's `time_ms` carries the Eq. 6 cost in *model units* (the
/// same quantity Fig. 5 normalizes), the occupancy fields come from
/// the shared feasibility gate, and the warp profile is empty: nothing
/// dynamic is computed.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPredictModel;

impl TimingModel for StaticPredictModel {
    fn id(&self) -> ModelId {
        ModelId::Static
    }

    fn estimate(
        &self,
        env: &ModelEnv<'_>,
        kernel: &CompiledKernel,
        n: u64,
    ) -> Result<SimReport, SimError> {
        let occ = env.launch_occupancy(kernel)?;
        let table = kernel.gpu.throughput();
        let cost = oriole_core::predict::predict_time_indexed(
            table,
            &kernel.index,
            &kernel.program,
            kernel.geometry(n),
        );
        Ok(SimReport {
            time_ms: cost,
            bound: BoundKind::Issue,
            occupancy: occ,
            busy_blocks: kernel.params.bc,
            busy_sms: kernel.params.bc.min(env.spec.multiprocessors),
            resident_warps: occ.active_warps,
            waves: 1,
            cycles: cost,
            profile: WarpProfile::default(),
        })
    }
}

/// The analytic roofline backend: completion time is the larger of the
/// device-wide issue-throughput roof and the DRAM bandwidth roof.
///
/// * **Issue roof** — every warp's issue work (Table II rates,
///   including LSU replays) spread evenly over all SMs, derated by the
///   achieved occupancy from the table: an SM running at 25% occupancy
///   sustains a quarter of its peak issue rate.
/// * **Bandwidth roof** — total 32-byte DRAM transactions at the
///   family's cycles-per-transaction constant, as in the simulator.
///
/// Deliberately simpler than the simulator: no latency bound, no
/// work-concentration accounting (all `BC` blocks are assumed busy),
/// and no divergence/barrier surcharges — the `model_agreement` bin
/// quantifies how much ranking signal that costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RooflineModel;

impl TimingModel for RooflineModel {
    fn id(&self) -> ModelId {
        ModelId::Roofline
    }

    fn estimate(
        &self,
        env: &ModelEnv<'_>,
        kernel: &CompiledKernel,
        n: u64,
    ) -> Result<SimReport, SimError> {
        let occ = env.launch_occupancy(kernel)?;
        let spec = env.spec;
        let params = kernel.params;
        let wb = spec.warps_per_block(params.tc);
        let warps_total = f64::from(params.bc) * f64::from(wb);
        let profile = WarpProfile::extract_with(
            &kernel.index,
            &kernel.program,
            env.cfg,
            n,
            params.tc,
            params.bc,
        );

        let mp = spec.multiprocessors;
        let t_issue =
            profile.issue_cycles * warps_total / f64::from(mp) / occ.occupancy.max(f64::EPSILON);
        let t_bw =
            profile.dram_transactions * warps_total * env.cfg.dram_cycles_per_transaction;
        let (cycles, bound) = if t_bw > t_issue {
            (t_bw, BoundKind::Bandwidth)
        } else {
            (t_issue, BoundKind::Issue)
        };

        let clock_hz = f64::from(spec.gpu_clock_mhz) * 1e6;
        let launch_us = env.cfg.launch_overhead_us
            + env.cfg.stream_overhead_us * f64::from(params.sc.saturating_sub(1));
        let slots = (occ.active_blocks * mp).max(1);
        Ok(SimReport {
            time_ms: cycles / clock_hz * 1e3 + launch_us / 1e3,
            bound,
            occupancy: occ,
            busy_blocks: params.bc,
            busy_sms: params.bc.min(mp),
            resident_warps: occ.active_warps,
            waves: params.bc.div_ceil(slots).max(1),
            cycles,
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_codegen::{compile, TuningParams};
    use oriole_kernels::KernelId;

    fn kernel(tc: u32, bc: u32) -> CompiledKernel {
        compile(
            &KernelId::Atax.ast(256),
            Gpu::K20.spec(),
            TuningParams::with_geometry(tc, bc),
        )
        .unwrap()
    }

    fn env_parts(gpu: &'static GpuSpec) -> (SimConfig, OccupancyTable) {
        (SimConfig::for_family(gpu.family), OccupancyTable::new(gpu))
    }

    #[test]
    fn ids_are_stable_and_parse_round_trips() {
        for id in ModelId::ALL {
            assert_eq!(ModelId::parse(id.name()), Some(id));
            assert_eq!(id.backend().id(), id);
            assert!(!id.describe().is_empty());
        }
        assert_eq!(ModelId::parse("SIMULATOR"), Some(ModelId::Simulator));
        assert_eq!(ModelId::parse("eq6"), Some(ModelId::Static));
        assert_eq!(ModelId::parse("warp-vote"), None);
        assert_eq!(ModelId::default(), ModelId::Simulator);
    }

    #[test]
    fn simulator_backend_matches_free_function() {
        let gpu = Gpu::K20.spec();
        let (cfg, occ) = env_parts(gpu);
        let env = ModelEnv { spec: gpu, cfg: &cfg, occ: &occ };
        let k = kernel(128, 48);
        assert_eq!(
            SimulatorModel.estimate(&env, &k, 256).unwrap(),
            crate::simulate(&k, 256).unwrap()
        );
    }

    #[test]
    fn static_backend_reports_eq6_cost() {
        let gpu = Gpu::K20.spec();
        let (cfg, occ) = env_parts(gpu);
        let env = ModelEnv { spec: gpu, cfg: &cfg, occ: &occ };
        let k = kernel(128, 48);
        let r = StaticPredictModel.estimate(&env, &k, 256).unwrap();
        let expected =
            oriole_core::predict::predict_time(&k.program, k.geometry(256));
        assert_eq!(r.time_ms, expected);
        assert_eq!(r.cycles, expected);
        assert_eq!(r.profile, WarpProfile::default());
        assert!(r.occupancy.active_blocks > 0);
    }

    #[test]
    fn roofline_is_bounded_and_distinct_from_simulator() {
        let gpu = Gpu::K20.spec();
        let (cfg, occ) = env_parts(gpu);
        let env = ModelEnv { spec: gpu, cfg: &cfg, occ: &occ };
        let k = kernel(128, 48);
        let roof = RooflineModel.estimate(&env, &k, 256).unwrap();
        let sim = SimulatorModel.estimate(&env, &k, 256).unwrap();
        assert!(roof.time_ms.is_finite() && roof.time_ms > 0.0);
        assert!(matches!(roof.bound, BoundKind::Issue | BoundKind::Bandwidth));
        // The roofline drops the latency bound and the concentration /
        // divergence surcharges — it must not reproduce the simulator.
        assert_ne!(roof.time_ms, sim.time_ms);
    }

    #[test]
    fn roofline_grows_with_problem_size() {
        let gpu = Gpu::K20.spec();
        let (cfg, occ) = env_parts(gpu);
        let env = ModelEnv { spec: gpu, cfg: &cfg, occ: &occ };
        let small = RooflineModel.estimate(&env, &kernel(128, 48), 64).unwrap();
        let large = RooflineModel.estimate(&env, &kernel(128, 48), 512).unwrap();
        assert!(large.time_ms > small.time_ms);
    }

    #[test]
    fn feasibility_gate_is_backend_independent() {
        // 40 KiB fixed shared memory with PreferL1 (16 KiB shared) on
        // Kepler: zero blocks fit — every backend must refuse with the
        // same limiter.
        let mut ast = KernelId::MatVec2D.ast(64);
        ast.shared[0].scales_with_block = false;
        ast.shared[0].elems = 40 * 1024 / 4;
        let mut params = TuningParams::with_geometry(128, 48);
        params.pl = oriole_codegen::PreferredL1::Kb48;
        let k = compile(&ast, Gpu::K20.spec(), params).unwrap();
        let gpu = Gpu::K20.spec();
        let (cfg, occ) = env_parts(gpu);
        let env = ModelEnv { spec: gpu, cfg: &cfg, occ: &occ };
        let errs: Vec<SimError> = ModelId::ALL
            .iter()
            .map(|id| id.backend().estimate(&env, &k, 64).unwrap_err())
            .collect();
        assert_eq!(errs[0], errs[1]);
        assert_eq!(errs[1], errs[2]);
    }
}
