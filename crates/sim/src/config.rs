//! Simulator timing constants.

use oriole_arch::Family;

/// Per-family timing constants, in SM cycles at the GPU core clock unless
/// stated otherwise.
///
/// Values are derived from the Table I clocks and public
/// bandwidth/latency figures for each generation; they set the *scale* of
/// model times. The reproduction's claims are relative, but the constants
/// are kept physically plausible so bounds trade off realistically.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// DRAM latency exposed to a lone warp (cycles).
    pub dram_latency: f64,
    /// L1/constant-cache service latency (cycles) for broadcast/cached
    /// accesses.
    pub cache_latency: f64,
    /// Shared-memory access latency (cycles).
    pub shared_latency: f64,
    /// Device-wide cycles per 32-byte DRAM transaction (inverse
    /// bandwidth, cycles/transaction across the whole GPU).
    pub dram_cycles_per_transaction: f64,
    /// Fixed cycles per block dispatch (scheduler work).
    pub block_dispatch_cycles: f64,
    /// Base cycles for a block-wide barrier, before the per-warp term.
    pub barrier_base_cycles: f64,
    /// Additional barrier cycles per resident warp in the block.
    pub barrier_per_warp_cycles: f64,
    /// Reconvergence-stack overhead per divergent branch execution.
    pub reconvergence_cycles: f64,
    /// Memory-level parallelism within one warp: how many independent
    /// outstanding loads a single warp sustains (scoreboarding lets
    /// address-independent loads overlap).
    pub warp_mlp: f64,
    /// Resident warps needed to approach full issue throughput: an SM
    /// with `W` warps sustains `W/(W + issue_warmup)` of its peak issue
    /// rate (dependency stalls starve the schedulers at low occupancy).
    pub issue_warmup: f64,
    /// Kernel-launch overhead in microseconds (host-side).
    pub launch_overhead_us: f64,
    /// Extra per-stream overhead in microseconds when `SC > 1`.
    pub stream_overhead_us: f64,
    /// Relative standard deviation of measurement noise.
    pub noise_sigma: f64,
}

impl SimConfig {
    /// The default constants for a GPU family.
    pub fn for_family(family: Family) -> SimConfig {
        // Latency figures follow the microbenchmark literature for each
        // generation (Wong et al. for Fermi, and successors); bandwidth
        // from datasheet GB/s over the Table I core clock.
        match family {
            Family::Fermi => SimConfig {
                dram_latency: 600.0,
                cache_latency: 40.0,
                shared_latency: 30.0,
                // 148 GB/s at 1147 MHz → ~129 B/cycle → 0.25 cyc/32B.
                dram_cycles_per_transaction: 0.25,
                block_dispatch_cycles: 300.0,
                barrier_base_cycles: 30.0,
                barrier_per_warp_cycles: 0.6,
                reconvergence_cycles: 12.0,
                warp_mlp: 3.0,
                issue_warmup: 3.0,
                launch_overhead_us: 6.0,
                stream_overhead_us: 2.0,
                noise_sigma: 0.01,
            },
            Family::Kepler => SimConfig {
                dram_latency: 520.0,
                cache_latency: 35.0,
                shared_latency: 28.0,
                // 208 GB/s at 824 MHz → ~252 B/cycle → 0.127 cyc/32B.
                dram_cycles_per_transaction: 0.127,
                block_dispatch_cycles: 250.0,
                barrier_base_cycles: 25.0,
                barrier_per_warp_cycles: 0.5,
                reconvergence_cycles: 10.0,
                warp_mlp: 4.0,
                issue_warmup: 3.0,
                launch_overhead_us: 5.0,
                stream_overhead_us: 2.0,
                noise_sigma: 0.01,
            },
            Family::Maxwell => SimConfig {
                dram_latency: 420.0,
                cache_latency: 30.0,
                shared_latency: 24.0,
                // 288 GB/s at 1140 MHz → ~253 B/cycle → 0.127 cyc/32B.
                dram_cycles_per_transaction: 0.127,
                block_dispatch_cycles: 220.0,
                barrier_base_cycles: 22.0,
                barrier_per_warp_cycles: 0.4,
                reconvergence_cycles: 8.0,
                warp_mlp: 4.0,
                issue_warmup: 3.0,
                launch_overhead_us: 5.0,
                stream_overhead_us: 1.5,
                noise_sigma: 0.01,
            },
            Family::Pascal => SimConfig {
                dram_latency: 380.0,
                cache_latency: 28.0,
                shared_latency: 22.0,
                // HBM2: 732 GB/s at the Table I 405 MHz core clock →
                // ~1800 B/cycle → 0.018 cyc/32B.
                dram_cycles_per_transaction: 0.018,
                block_dispatch_cycles: 200.0,
                barrier_base_cycles: 20.0,
                barrier_per_warp_cycles: 0.3,
                reconvergence_cycles: 8.0,
                warp_mlp: 5.0,
                issue_warmup: 3.0,
                launch_overhead_us: 5.0,
                stream_overhead_us: 1.5,
                noise_sigma: 0.01,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_have_configs() {
        for f in Family::ALL {
            let c = SimConfig::for_family(f);
            assert!(c.dram_latency > c.cache_latency);
            assert!(c.cache_latency > 0.0);
            assert!(c.dram_cycles_per_transaction > 0.0);
            assert!(c.noise_sigma > 0.0 && c.noise_sigma < 0.1);
        }
    }

    #[test]
    fn newer_generations_have_lower_latency() {
        let fermi = SimConfig::for_family(Family::Fermi);
        let pascal = SimConfig::for_family(Family::Pascal);
        assert!(pascal.dram_latency < fermi.dram_latency);
        assert!(pascal.dram_cycles_per_transaction < fermi.dram_cycles_per_transaction);
    }
}
