//! Per-warp cost extraction from a lowered program.
//!
//! The profile integrates warp-level execution weights
//! ([`FreqExpr::eval_warp`](oriole_ir::FreqExpr::eval_warp)) over every
//! instruction, producing the handful of totals the timing model needs:
//! issue cycles (with load/store-unit replays for uncoalesced access),
//! memory-operation counts and average latency, DRAM transactions,
//! barrier and divergent-branch executions, and spill traffic.

use crate::config::SimConfig;
use oriole_ir::{AccessPattern, MemSpace, ProfileEvent, Program, ProgramIndex, TermClass};
use oriole_arch::{OpClass, ThroughputTable};

/// Aggregated per-warp costs (averaged over the busy warps of a launch).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarpProfile {
    /// SM issue cycles per warp, including LSU transaction replays and
    /// shared-memory bank-conflict replays.
    pub issue_cycles: f64,
    /// Warp-level memory operations (dependent-chain stall points).
    pub mem_ops: f64,
    /// Σ (service latency × weight) over memory ops — divide by
    /// [`WarpProfile::mem_ops`] for the average exposed latency.
    pub latency_weighted: f64,
    /// 32-byte DRAM transactions per warp.
    pub dram_transactions: f64,
    /// Barrier executions per warp.
    pub barriers: f64,
    /// Divergent-branch executions per warp (reconvergence events).
    pub divergent_branches: f64,
}

impl WarpProfile {
    /// Average memory service latency per operation (0 when no memory
    /// ops execute).
    pub fn avg_latency(&self) -> f64 {
        if self.mem_ops > 0.0 {
            self.latency_weighted / self.mem_ops
        } else {
            0.0
        }
    }

    /// Extracts the profile of `program` at warp-level weights for
    /// geometry `(n, tc, bc)`, building a throwaway [`ProgramIndex`]
    /// first. Prefer [`WarpProfile::extract_with`] with the kernel's
    /// shared index on hot paths; both produce bit-identical profiles.
    ///
    /// Pass the *busy* block count as `bc` to obtain per-busy-warp costs
    /// (idle blocks fail their range guards immediately and are handled
    /// by the machine model's dispatch term instead).
    pub fn extract(program: &Program, cfg: &SimConfig, n: u64, tc: u32, bc: u32) -> WarpProfile {
        WarpProfile::extract_with(&ProgramIndex::build(program), program, cfg, n, tc, bc)
    }

    /// [`WarpProfile::extract`] replaying the prebuilt index's per-block
    /// profile tapes instead of re-matching `Instr` vectors. Latencies
    /// and replay counts stay resolved here at query time (the tape
    /// records *what* accesses happen, [`SimConfig`] says what they
    /// cost), so one index serves every device configuration.
    pub fn extract_with(
        index: &ProgramIndex,
        program: &Program,
        cfg: &SimConfig,
        n: u64,
        tc: u32,
        bc: u32,
    ) -> WarpProfile {
        let table = ThroughputTable::for_family(program.meta.family);
        let issue_of = |class: OpClass| 32.0 / f64::from(table.ipc(class));
        let mut p = WarpProfile::default();

        let mut hottest_weight: f64 = 0.0;
        for (block, s) in program.blocks.iter().zip(index.summaries()) {
            let w = block.freq.eval_warp(n, tc, bc);
            if w <= 0.0 {
                continue;
            }
            hottest_weight = hottest_weight.max(w);
            for ev in &s.profile_tape {
                match *ev {
                    ProfileEvent::Mem { class, space, pattern } => {
                        let (replays, latency, dram) = service(cfg, space, pattern);
                        p.issue_cycles += issue_of(class) * replays * w;
                        p.mem_ops += w;
                        p.latency_weighted += latency * w;
                        p.dram_transactions += dram * w;
                    }
                    ProfileEvent::Bar { class } => {
                        p.barriers += w;
                        p.issue_cycles += issue_of(class) * w;
                    }
                    ProfileEvent::Issue { class } => {
                        p.issue_cycles += issue_of(class) * w;
                    }
                }
            }
            match s.term {
                TermClass::Ctrl => {
                    p.issue_cycles += issue_of(OpClass::CtrlIns) * w;
                }
                TermClass::CondBranch { divergent } => {
                    p.issue_cycles += issue_of(OpClass::CtrlIns) * w;
                    if divergent {
                        p.divergent_branches += w;
                    }
                }
                TermClass::Ret => {}
            }
        }

        // Register spills: each spilled value is stored and reloaded in
        // the hottest region (the allocator spills what's live across the
        // busiest loop). Spilled traffic is local memory: per-thread
        // addresses interleave, so accesses coalesce (1 transaction) but
        // pay L2-class latency. Spill bytes live in `program.meta`, not
        // the index: specialization fills them in after the shared index
        // is built.
        let spilled_regs = f64::from(program.meta.spill_bytes) / 4.0;
        if spilled_regs > 0.0 && hottest_weight > 0.0 {
            let ops = 2.0 * spilled_regs * hottest_weight;
            let (replays, latency, dram) = service(cfg, MemSpace::Local, AccessPattern::Coalesced);
            p.issue_cycles += issue_of(OpClass::LdStIns) * replays * ops;
            p.mem_ops += ops;
            p.latency_weighted += latency * ops;
            p.dram_transactions += dram * ops;
        }
        p
    }

    /// The pre-index walk-based implementation, retained as the oracle
    /// the proptests compare against.
    #[cfg(test)]
    pub(crate) fn extract_walk(
        program: &Program,
        cfg: &SimConfig,
        n: u64,
        tc: u32,
        bc: u32,
    ) -> WarpProfile {
        use oriole_ir::{OpKind, Terminator};
        let table = ThroughputTable::for_family(program.meta.family);
        let issue_of = |class: OpClass| 32.0 / f64::from(table.ipc(class));
        let mut p = WarpProfile::default();

        let mut hottest_weight: f64 = 0.0;
        for block in &program.blocks {
            let w = block.freq.eval_warp(n, tc, bc);
            if w <= 0.0 {
                continue;
            }
            hottest_weight = hottest_weight.max(w);
            for instr in &block.instrs {
                let class = instr.opcode.op_class();
                match instr.opcode.kind {
                    OpKind::Ld(space) | OpKind::St(space) => {
                        let pattern = instr
                            .mem
                            .map(|m| m.pattern)
                            .unwrap_or(AccessPattern::Coalesced);
                        let (replays, latency, dram) = service(cfg, space, pattern);
                        p.issue_cycles += issue_of(class) * replays * w;
                        p.mem_ops += w;
                        p.latency_weighted += latency * w;
                        p.dram_transactions += dram * w;
                    }
                    OpKind::Tex | OpKind::Surf => {
                        let (replays, latency, dram) =
                            service(cfg, MemSpace::Texture, AccessPattern::Coalesced);
                        p.issue_cycles += issue_of(class) * replays * w;
                        p.mem_ops += w;
                        p.latency_weighted += latency * w;
                        p.dram_transactions += dram * w;
                    }
                    OpKind::Bar => {
                        p.barriers += w;
                        p.issue_cycles += issue_of(class) * w;
                    }
                    _ => {
                        p.issue_cycles += issue_of(class) * w;
                    }
                }
            }
            match &block.term {
                Terminator::Jump(_) | Terminator::LoopBack { .. } => {
                    p.issue_cycles += issue_of(OpClass::CtrlIns) * w;
                }
                Terminator::CondBranch { divergent, .. } => {
                    p.issue_cycles += issue_of(OpClass::CtrlIns) * w;
                    if *divergent {
                        p.divergent_branches += w;
                    }
                }
                Terminator::Ret => {}
            }
        }

        let spilled_regs = f64::from(program.meta.spill_bytes) / 4.0;
        if spilled_regs > 0.0 && hottest_weight > 0.0 {
            let ops = 2.0 * spilled_regs * hottest_weight;
            let (replays, latency, dram) = service(cfg, MemSpace::Local, AccessPattern::Coalesced);
            p.issue_cycles += issue_of(OpClass::LdStIns) * replays * ops;
            p.mem_ops += ops;
            p.latency_weighted += latency * ops;
            p.dram_transactions += dram * ops;
        }
        p
    }
}

/// Service model for one warp-level access:
/// `(LSU replays, exposed latency, DRAM transactions)`.
fn service(cfg: &SimConfig, space: MemSpace, pattern: AccessPattern) -> (f64, f64, f64) {
    let trans = f64::from(pattern.transactions_per_warp());
    match space {
        MemSpace::Shared => {
            // Bank conflicts replay in the LSU; no DRAM traffic.
            (trans, cfg.shared_latency, 0.0)
        }
        MemSpace::Constant => (1.0, cfg.cache_latency, 0.0),
        MemSpace::Local => {
            // Spill traffic: L2-resident in the common case.
            (1.0, cfg.dram_latency * 0.5, 1.0)
        }
        MemSpace::Global | MemSpace::Texture => match pattern {
            // Broadcast/cached reads are served by L1/texture cache.
            AccessPattern::Broadcast => (1.0, cfg.cache_latency, 0.0),
            _ => (trans, cfg.dram_latency, trans),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Family;
    use oriole_ir::lower::{lower, LowerOptions};
    use oriole_ir::{
        AluOp, Branch, DivergenceKind, KernelAst, Loop, SizeExpr, Stmt, TripCount,
    };

    fn profile_of(body: Vec<Stmt>, n: u64, tc: u32, bc: u32) -> WarpProfile {
        let mut k = KernelAst::new("p");
        k.body = body;
        let p = lower(&k, Family::Kepler, LowerOptions::default());
        WarpProfile::extract(&p, &SimConfig::for_family(Family::Kepler), n, tc, bc)
    }

    #[test]
    fn strided_loads_replay_in_lsu() {
        let coalesced = profile_of(
            vec![Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1)],
            64,
            32,
            1,
        );
        let strided = profile_of(
            vec![Stmt::Load(oriole_ir::MemStmt {
                space: MemSpace::Global,
                pattern: AccessPattern::Strided(32),
                elem_bytes: 4,
                count: 1,
            })],
            64,
            32,
            1,
        );
        // 32 replays vs 1 → strided issue must dominate.
        assert!(strided.issue_cycles > coalesced.issue_cycles + 25.0);
        assert!(strided.dram_transactions >= 32.0 * 0.99);
        assert!((coalesced.dram_transactions - 1.0).abs() < 0.01);
        // Same number of dependent-chain stall points.
        assert!((strided.mem_ops - coalesced.mem_ops).abs() < 1e-9);
    }

    #[test]
    fn broadcast_hits_cache() {
        let p = profile_of(
            vec![Stmt::load(MemSpace::Global, AccessPattern::Broadcast, 1)],
            64,
            32,
            1,
        );
        assert_eq!(p.dram_transactions, 0.0);
        let cfg = SimConfig::for_family(Family::Kepler);
        assert!((p.avg_latency() - cfg.cache_latency).abs() < 1e-9);
    }

    #[test]
    fn shared_access_no_dram() {
        let p = profile_of(
            vec![
                Stmt::store(MemSpace::Shared, AccessPattern::Coalesced, 1),
                Stmt::load(MemSpace::Shared, AccessPattern::Coalesced, 1),
            ],
            64,
            32,
            1,
        );
        assert_eq!(p.dram_transactions, 0.0);
        assert_eq!(p.mem_ops, 2.0);
    }

    #[test]
    fn loop_weights_scale_costs() {
        let body = |trips| {
            vec![Stmt::Loop(Loop {
                trip: TripCount::Const(trips),
                unrollable: false,
                body: vec![Stmt::ops(AluOp::FmaF32, 1)],
            })]
        };
        let short = profile_of(body(10), 64, 32, 1);
        let long = profile_of(body(100), 64, 32, 1);
        assert!(long.issue_cycles > short.issue_cycles * 5.0);
    }

    #[test]
    fn divergent_branches_counted() {
        let p = profile_of(
            vec![Stmt::If(Branch {
                divergence: DivergenceKind::ThreadDependent,
                taken_fraction: 0.1,
                then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
                else_body: vec![Stmt::ops(AluOp::MulF32, 1)],
            })],
            64,
            32,
            1,
        );
        assert!((p.divergent_branches - 1.0).abs() < 1e-9);
        let uniform = profile_of(
            vec![Stmt::If(Branch {
                divergence: DivergenceKind::Uniform,
                taken_fraction: 0.1,
                then_body: vec![Stmt::ops(AluOp::AddF32, 1)],
                else_body: vec![Stmt::ops(AluOp::MulF32, 1)],
            })],
            64,
            32,
            1,
        );
        assert_eq!(uniform.divergent_branches, 0.0);
    }

    #[test]
    fn divergence_saturates_both_sides() {
        // With a 10% divergent branch, warp-level weights run both sides
        // nearly always → issue exceeds the uniform case, where only the
        // expected fraction executes.
        let mk = |kind| {
            profile_of(
                vec![Stmt::If(Branch {
                    divergence: kind,
                    taken_fraction: 0.1,
                    then_body: vec![Stmt::ops(AluOp::FmaF32, 50)],
                    else_body: vec![Stmt::ops(AluOp::FmaF32, 50)],
                })],
                64,
                32,
                1,
            )
        };
        let div = mk(DivergenceKind::ThreadDependent);
        let uni = mk(DivergenceKind::Uniform);
        assert!(
            div.issue_cycles > uni.issue_cycles * 1.5,
            "divergent {} vs uniform {}",
            div.issue_cycles,
            uni.issue_cycles
        );
    }

    #[test]
    fn barrier_counted() {
        let p = profile_of(vec![Stmt::SyncThreads], 64, 32, 1);
        assert_eq!(p.barriers, 1.0);
    }

    #[test]
    fn grid_stride_work_is_packing_invariant() {
        // Total issue over the grid (profile × warps) must not depend on
        // geometry for grid-stride dominated kernels.
        let body = vec![Stmt::Loop(Loop {
            trip: TripCount::GridStride(SizeExpr::N2),
            unrollable: false,
            body: vec![Stmt::ops(AluOp::FmaF32, 16)],
        })];
        // Compare geometries where every thread carries work (t ≥ 1) so
        // per-warp prologue overhead stays second-order.
        let p1 = profile_of(body.clone(), 128, 64, 8);
        let p2 = profile_of(body, 128, 128, 16);
        let total1 = p1.issue_cycles * (64.0 * 8.0 / 32.0);
        let total2 = p2.issue_cycles * (128.0 * 16.0 / 32.0);
        let rel = (total1 - total2).abs() / total1;
        assert!(rel < 0.25, "{total1} vs {total2}");
    }

    #[test]
    fn spills_add_traffic() {
        let mut k = KernelAst::new("spilled");
        k.body = vec![Stmt::Loop(Loop {
            trip: TripCount::Const(64),
            unrollable: false,
            body: vec![Stmt::ops(AluOp::FmaF32, 1)],
        })];
        let mut p = lower(&k, Family::Fermi, LowerOptions::default());
        let cfg = SimConfig::for_family(Family::Fermi);
        let clean = WarpProfile::extract(&p, &cfg, 64, 32, 1);
        p.meta.spill_bytes = 16; // 4 spilled registers
        let spilled = WarpProfile::extract(&p, &cfg, 64, 32, 1);
        assert!(spilled.dram_transactions > clean.dram_transactions);
        assert!(spilled.mem_ops > clean.mem_ops);
        assert!(spilled.issue_cycles > clean.issue_cycles);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testgen::arb_kernel;
    use oriole_arch::Family;
    use oriole_ir::lower::{lower, LowerOptions};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn indexed_profile_bit_identical(
            ast in arb_kernel(),
            fast in any::<bool>(),
            n in 1u64..256,
            tc_i in 0usize..4,
            bc in 1u32..49,
            spilled_regs in 0u32..8,
        ) {
            let tc = [32u32, 128, 512, 1024][tc_i];
            let mut p = lower(&ast, Family::Kepler, LowerOptions { fast_math: fast });
            // The index is meta-independent: build it before the spill
            // bytes land, as the front end does.
            let idx = ProgramIndex::build(&p);
            p.meta.spill_bytes = spilled_regs * 4;
            let cfg = SimConfig::for_family(Family::Kepler);
            let indexed = WarpProfile::extract_with(&idx, &p, &cfg, n, tc, bc);
            let walk = WarpProfile::extract_walk(&p, &cfg, n, tc, bc);
            prop_assert_eq!(&indexed, &walk);
            // The convenience wrapper builds an equivalent throwaway
            // index.
            prop_assert_eq!(&WarpProfile::extract(&p, &cfg, n, tc, bc), &walk);
        }
    }
}
