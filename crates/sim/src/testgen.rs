//! Shared random-AST / random-point generators for this crate's unit
//! proptests (bit-identity checks of the index-replayed analyses
//! against their retained walk-based oracles).

use oriole_codegen::TuningParams;
use oriole_ir::{
    AccessPattern, AluOp, Branch, DivergenceKind, KernelAst, Loop, MemSpace, MemStmt, SizeExpr,
    Stmt, TripCount,
};
use proptest::prelude::*;

pub(crate) fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let alu = prop_oneof![
        Just(AluOp::AddF32),
        Just(AluOp::MulF32),
        Just(AluOp::FmaF32),
        Just(AluOp::DivF32),
        Just(AluOp::SqrtF32),
        Just(AluOp::AddI32),
        Just(AluOp::CvtI32F32),
    ];
    let space = prop_oneof![
        Just(MemSpace::Global),
        Just(MemSpace::Shared),
        Just(MemSpace::Constant),
    ];
    let pattern = prop_oneof![
        Just(AccessPattern::Coalesced),
        Just(AccessPattern::Broadcast),
        Just(AccessPattern::Random),
        (1u32..=64).prop_map(AccessPattern::Strided),
    ];
    let leaf = prop_oneof![
        (alu, 1u32..4).prop_map(|(op, count)| Stmt::ops(op, count)),
        (space.clone(), pattern.clone(), 1u32..3).prop_map(|(s, p, c)| Stmt::load(s, p, c)),
        (space, pattern, 1u32..3).prop_map(|(s, p, c)| {
            Stmt::Store(MemStmt { space: s, pattern: p, elem_bytes: 4, count: c })
        }),
        Just(Stmt::SyncThreads),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let trip = prop_oneof![
        (1u64..=64).prop_map(TripCount::Const),
        (0u8..=2).prop_map(|p| TripCount::Size(SizeExpr::new(1.0, p))),
        (1u8..=2).prop_map(|p| TripCount::GridStride(SizeExpr::new(1.0, p))),
    ];
    let inner = arb_stmt(depth - 1);
    prop_oneof![
        4 => leaf,
        2 => (trip, prop::collection::vec(inner.clone(), 1..4), any::<bool>()).prop_map(
            |(trip, body, unrollable)| Stmt::Loop(Loop { trip, body, unrollable })
        ),
        1 => (
            prop_oneof![Just(DivergenceKind::Uniform), Just(DivergenceKind::ThreadDependent)],
            0.0f64..=1.0,
            prop::collection::vec(inner.clone(), 1..3),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(divergence, taken_fraction, then_body, else_body)| {
                Stmt::If(Branch { divergence, taken_fraction, then_body, else_body })
            }),
    ]
    .boxed()
}

pub(crate) fn arb_kernel() -> impl Strategy<Value = KernelAst> {
    prop::collection::vec(arb_stmt(2), 1..5).prop_map(|body| {
        let mut k = KernelAst::new("sim_prop");
        k.body = body;
        k
    })
}

/// Valid tuning points spanning the paper space's axes that affect the
/// analyses under test: `TC`, `BC`, `UIF` and `CFLAGS`.
pub(crate) fn arb_params() -> impl Strategy<Value = TuningParams> {
    (0usize..4, 1u32..=8, 1u32..=5, any::<bool>()).prop_map(|(tc_i, bc_m, uif, fast)| {
        let mut p = TuningParams::with_geometry([32u32, 128, 512, 1024][tc_i], bc_m * 24);
        p.uif = uif;
        p.cflags.fast_math = fast;
        p
    })
}
