//! Device-scoped model context: memoized model estimation services.
//!
//! The free functions of this crate ([`simulate`](crate::simulate),
//! [`measure`](crate::measure), [`dynamic_mix`](crate::dynamic_mix)) are
//! pure in their inputs, and real workloads hammer them with *repeated*
//! inputs: the paper's 5,120-point space shares ten lowered programs per
//! input size, every trial batch re-simulates the same variant, and every
//! simulation recomputes the same occupancy point. [`ModelContext`] is
//! the per-`(device, timing model)` owner of the memoized versions of
//! those services:
//!
//! * an [`OccupancyTable`] over the quantized `(warps, regs, smem,
//!   L1-split)` domain — every simulation's occupancy lookup;
//! * a **dynamic-mix memo** keyed by `(lowered program, TC, BC, n)` —
//!   variants that share a front-end artifact and launch geometry reuse
//!   one mix regardless of `PL`/`SC`;
//! * a **`SimReport` cache** keyed by `(lowered program, tuning point,
//!   n)` — trial batches only add seeded noise around one model time, so
//!   repeated measurements of a variant reuse its report.
//!
//! # Pluggable backends
//!
//! Which cost model fills the report cache is the context's
//! [`TimingModel`] backend ([`model`](crate::model)): the default is
//! the full simulator ([`SimulatorModel`](crate::SimulatorModel)), and
//! [`ModelContext::for_model`] builds a context for any [`ModelId`]
//! (static Eq. 6, roofline). A context serves exactly one backend —
//! contexts for different models on one device are distinct values
//! with distinct caches, and every layer above keys its artifacts by
//! `(GpuSpec contents, ModelId)` so estimates can never alias across
//! backends.
//!
//! # Keys and determinism
//!
//! Cache keys are **content-addressed**: [`ProgramKey`] wraps the full
//! textual serialization of the lowered program (plus the shared-memory
//! declarations for front-end artifacts, which determine the per-`TC`
//! footprint the back-end derives). Emit → parse round-trips exactly
//! (see `oriole_ir::text`), so two keys compare equal *iff* the model
//! inputs are indistinguishable — a hit can never return another
//! program's result, and every cached value is the value the direct
//! computation would produce. The free functions remain available as
//! thin wrappers over the same single implementation and are
//! property-tested bit-identical to the context-backed paths.
//!
//! All caches are internally synchronized: one context can serve every
//! evaluation worker of a search, and a process-level artifact store can
//! hold one context per device.

use crate::config::SimConfig;
use crate::counters;
use crate::machine::{SimError, SimReport};
use crate::memo::ShardedOnceMap;
use crate::model::{ModelEnv, ModelId, TimingModel};
use crate::noise::{noisy_trials, Trials};
use oriole_arch::{GpuSpec, Occupancy, OccupancyInput, OccupancyTable};
use oriole_codegen::{CompiledKernel, FrontEnd, TuningParams};
use oriole_ir::MixCounts;
use std::collections::hash_map::DefaultHasher;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Content-addressed identity of a lowered program for model caches.
///
/// Wraps the textual serialization (shared, cheap to clone), so key
/// equality is exact program equality — never a hash that could collide.
/// Compute once per artifact and reuse ([`ProgramKey::of_front_end`] in
/// the evaluator hot path); the per-kernel form exists for the
/// compatibility wrappers. The content hash is precomputed at
/// construction, so map lookups never re-hash the multi-kilobyte text,
/// and equality short-circuits on it (falling back to a full text
/// compare, so a hash collision can only cost time, never correctness).
#[derive(Debug, Clone)]
pub struct ProgramKey {
    text: Arc<str>,
    hash: u64,
}

impl PartialEq for ProgramKey {
    fn eq(&self, other: &ProgramKey) -> bool {
        self.hash == other.hash
            && (Arc::ptr_eq(&self.text, &other.text) || self.text == other.text)
    }
}

impl Eq for ProgramKey {}

impl Hash for ProgramKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl ProgramKey {
    fn from_text(text: String) -> ProgramKey {
        let mut h = DefaultHasher::new();
        text.hash(&mut h);
        ProgramKey { text: Arc::from(text), hash: h.finish() }
    }

    /// Key of one specialized kernel: the emitted program, metadata
    /// included (registers and static shared memory are part of the
    /// text, so anything the model reads is in the key).
    pub fn of_kernel(kernel: &CompiledKernel) -> ProgramKey {
        ProgramKey::from_text(oriole_ir::text::emit(&kernel.program))
    }

    /// Key of a front-end artifact: the emitted pre-specialization
    /// program plus the shared-memory declarations. Together with the
    /// tuning point (always a separate key component) these determine
    /// every specialization bit-exactly — register allocation is a pure
    /// function of the lowered program and the device cap, and the
    /// shared-memory footprint of the declarations and `TC`.
    pub fn of_front_end(fe: &FrontEnd) -> ProgramKey {
        let mut text = oriole_ir::text::emit(fe.program());
        for d in fe.shared_decls() {
            let _ = write!(
                text,
                "\n;shared {} elem_bytes={} elems={} scales={}",
                d.name, d.elem_bytes, d.elems, d.scales_with_block
            );
        }
        ProgramKey::from_text(text)
    }
}

/// Cache telemetry of one [`ModelContext`] — the numbers behind the CLI
/// `tune --stats` report. A context serves exactly one backend, so the
/// hit rates are inherently per-backend; `model` names which one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelStats {
    /// The backend these counters belong to.
    pub model: ModelId,
    /// Occupancy-table hits (legal lookups served from the table).
    pub occ_hits: u64,
    /// Occupancy-table misses (direct calculations performed).
    pub occ_misses: u64,
    /// Distinct quantized occupancy keys materialized.
    pub occ_entries: usize,
    /// Dynamic-mix memo hits.
    pub mix_hits: u64,
    /// Dynamic-mix computations performed.
    pub mix_misses: u64,
    /// `SimReport` cache hits.
    pub report_hits: u64,
    /// Simulations performed.
    pub report_misses: u64,
}

/// Per-`(device, timing model)` memoized model services. See the
/// [module docs](self).
pub struct ModelContext {
    spec: GpuSpec,
    cfg: SimConfig,
    model: Box<dyn TimingModel>,
    occ: OccupancyTable,
    mixes: ShardedOnceMap<(ProgramKey, u32, u32, u64), MixCounts>,
    reports: ShardedOnceMap<(ProgramKey, TuningParams, u64), Result<SimReport, SimError>>,
}

impl ModelContext {
    /// A context for `spec` with the family-default [`SimConfig`] and
    /// the default simulator backend — the configuration the free
    /// functions use, so results interchange.
    pub fn new(spec: &GpuSpec) -> ModelContext {
        ModelContext::for_model(spec, ModelId::default())
    }

    /// A context for `spec` running the backend `model` names, with the
    /// family-default [`SimConfig`].
    pub fn for_model(spec: &GpuSpec, model: ModelId) -> ModelContext {
        ModelContext::with_model(spec, SimConfig::for_family(spec.family), model.backend())
    }

    /// A simulator-backend context with an explicit configuration
    /// (ablations).
    pub fn with_config(spec: &GpuSpec, cfg: SimConfig) -> ModelContext {
        ModelContext::with_model(spec, cfg, ModelId::Simulator.backend())
    }

    /// The fully explicit constructor: any configuration, any backend
    /// (including ones defined outside this crate).
    pub fn with_model(
        spec: &GpuSpec,
        cfg: SimConfig,
        model: Box<dyn TimingModel>,
    ) -> ModelContext {
        ModelContext {
            spec: spec.clone(),
            cfg,
            model,
            occ: OccupancyTable::new(spec),
            mixes: ShardedOnceMap::new(),
            reports: ShardedOnceMap::new(),
        }
    }

    /// The device this context serves.
    pub fn gpu(&self) -> &GpuSpec {
        &self.spec
    }

    /// The identity of the timing backend filling this context's report
    /// cache.
    pub fn model_id(&self) -> ModelId {
        self.model.id()
    }

    /// The simulator configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The device occupancy table (shared with the static-analysis
    /// paths, which probe the same tiny domain).
    pub fn occupancy_table(&self) -> &OccupancyTable {
        &self.occ
    }

    /// Memoized occupancy — bit-identical to
    /// [`oriole_arch::occupancy()`] on this device.
    pub fn occupancy(&self, input: OccupancyInput) -> Occupancy {
        self.occ.lookup(input)
    }

    /// Memoized estimate under this context's backend — for the default
    /// simulator backend, [`simulate`](crate::simulate) exactly.
    /// Computes the kernel's [`ProgramKey`] on the fly.
    pub fn simulate(&self, kernel: &CompiledKernel, n: u64) -> Result<SimReport, SimError> {
        self.simulate_keyed(&ProgramKey::of_kernel(kernel), kernel, n)
    }

    /// Memoized estimate with a caller-amortized key (`key` must
    /// identify `kernel`'s program — obtain it from
    /// [`ProgramKey::of_kernel`] or, for artifacts stamping out many
    /// variants, [`ProgramKey::of_front_end`]). The report cache is
    /// private to this context, and a context serves one backend, so a
    /// hit can never replay another model's estimate.
    pub fn simulate_keyed(
        &self,
        key: &ProgramKey,
        kernel: &CompiledKernel,
        n: u64,
    ) -> Result<SimReport, SimError> {
        debug_assert_eq!(kernel.gpu, self.spec, "kernel compiled for another device");
        self.reports.get_or_init((key.clone(), kernel.params, n), || {
            let env = ModelEnv { spec: &self.spec, cfg: &self.cfg, occ: &self.occ };
            self.model.estimate(&env, kernel, n)
        })
    }

    /// Memoized [`measure`](crate::measure) (under the default backend;
    /// other backends measure their own estimates): the noise-free
    /// report comes from the report cache, the seeded trial noise is
    /// regenerated per call (it is what distinguishes measurements), so
    /// results are bit-identical to the free function.
    pub fn measure(
        &self,
        kernel: &CompiledKernel,
        n: u64,
        trials: u32,
        seed: u64,
    ) -> Result<Trials, SimError> {
        self.measure_keyed(&ProgramKey::of_kernel(kernel), kernel, n, trials, seed)
    }

    /// [`ModelContext::measure`] with a caller-amortized key.
    pub fn measure_keyed(
        &self,
        key: &ProgramKey,
        kernel: &CompiledKernel,
        n: u64,
        trials: u32,
        seed: u64,
    ) -> Result<Trials, SimError> {
        let report = self.simulate_keyed(key, kernel, n)?;
        let times_ms = noisy_trials(&report, trials, seed, &self.cfg);
        Ok(Trials { times_ms, report })
    }

    /// Memoized [`dynamic_mix`](crate::dynamic_mix); computes the
    /// kernel's [`ProgramKey`] on the fly.
    pub fn dynamic_mix(&self, kernel: &CompiledKernel, n: u64) -> MixCounts {
        self.dynamic_mix_keyed(&ProgramKey::of_kernel(kernel), kernel, n)
    }

    /// Memoized dynamic mix with a caller-amortized key. The memo key is
    /// `(program, TC, BC, n)`: `PL` and `SC` do not enter the counters,
    /// so variants differing only in those axes share one entry.
    pub fn dynamic_mix_keyed(&self, key: &ProgramKey, kernel: &CompiledKernel, n: u64) -> MixCounts {
        let params = kernel.params;
        self.mixes
            .get_or_init((key.clone(), params.tc, params.bc, n), || counters::dynamic_mix(kernel, n))
    }

    /// Cache telemetry since construction.
    pub fn stats(&self) -> ModelStats {
        let (occ_hits, occ_misses) = self.occ.counters();
        let (mix_hits, mix_misses) = self.mixes.counters();
        let (report_hits, report_misses) = self.reports.counters();
        ModelStats {
            model: self.model.id(),
            occ_hits,
            occ_misses,
            occ_entries: self.occ.len(),
            mix_hits,
            mix_misses,
            report_hits,
            report_misses,
        }
    }
}

impl std::fmt::Debug for ModelContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelContext")
            .field("gpu", &self.spec.name)
            .field("model", &self.model.id())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dynamic_mix, measure, simulate};
    use oriole_arch::Gpu;
    use oriole_codegen::{compile, front_end, CompilerFlags};
    use oriole_kernels::KernelId;

    fn kernel(tc: u32, bc: u32) -> CompiledKernel {
        compile(
            &KernelId::Atax.ast(128),
            Gpu::K20.spec(),
            TuningParams::with_geometry(tc, bc),
        )
        .unwrap()
    }

    #[test]
    fn context_paths_match_free_functions() {
        let ctx = ModelContext::new(Gpu::K20.spec());
        let k = kernel(128, 48);
        assert_eq!(ctx.simulate(&k, 128).unwrap(), simulate(&k, 128).unwrap());
        assert_eq!(ctx.measure(&k, 128, 10, 7).unwrap(), measure(&k, 128, 10, 7).unwrap());
        assert_eq!(ctx.dynamic_mix(&k, 128), dynamic_mix(&k, 128));
    }

    #[test]
    fn backend_selection_changes_estimates_not_interfaces() {
        let k = kernel(128, 48);
        let mut times = Vec::new();
        for id in crate::ModelId::ALL {
            let ctx = ModelContext::for_model(Gpu::K20.spec(), id);
            assert_eq!(ctx.model_id(), id);
            assert_eq!(ctx.stats().model, id);
            let r = ctx.simulate(&k, 128).unwrap();
            assert!(r.time_ms > 0.0);
            // The measurement path works for every backend (noise wraps
            // whatever cost the model produced).
            let t = ctx.measure(&k, 128, 10, 7).unwrap();
            assert_eq!(t.report, r);
            times.push(r.time_ms);
        }
        // Three genuinely different cost models.
        assert_ne!(times[0], times[1]);
        assert_ne!(times[0], times[2]);
        assert_ne!(times[1], times[2]);
    }

    #[test]
    fn report_cache_hits_on_repeat_and_across_trials() {
        let ctx = ModelContext::new(Gpu::K20.spec());
        let k = kernel(128, 48);
        let key = ProgramKey::of_kernel(&k);
        let a = ctx.measure_keyed(&key, &k, 128, 10, 1).unwrap();
        let b = ctx.measure_keyed(&key, &k, 128, 10, 2).unwrap();
        assert_eq!(a.report, b.report, "trial batches share one report");
        assert_ne!(a.times_ms, b.times_ms, "different seeds still differ");
        let s = ctx.stats();
        assert_eq!(s.report_misses, 1);
        assert_eq!(s.report_hits, 1);
    }

    #[test]
    fn mix_memo_shared_across_pl_and_sc() {
        let ctx = ModelContext::new(Gpu::K20.spec());
        let base = kernel(128, 48);
        let mut p2 = base.params;
        p2.pl = oriole_codegen::PreferredL1::Kb48;
        p2.sc = 4;
        let fe = front_end(
            &KernelId::Atax.ast(128),
            Gpu::K20.spec(),
            base.params.uif,
            CompilerFlags::default(),
        )
        .unwrap();
        let key = ProgramKey::of_front_end(&fe);
        let k2 = fe.specialize(p2).unwrap();
        let m1 = ctx.dynamic_mix_keyed(&key, &base, 128);
        let m2 = ctx.dynamic_mix_keyed(&key, &k2, 128);
        assert_eq!(m1, m2);
        let s = ctx.stats();
        assert_eq!((s.mix_misses, s.mix_hits), (1, 1));
    }

    #[test]
    fn front_end_key_distinguishes_shared_decls() {
        let gpu = Gpu::K20.spec();
        let ast = KernelId::MatVec2D.ast(64);
        let mut bigger = ast.clone();
        bigger.shared[0].elems *= 2;
        let fe_a = front_end(&ast, gpu, 1, CompilerFlags::default()).unwrap();
        let fe_b = front_end(&bigger, gpu, 1, CompilerFlags::default()).unwrap();
        assert_ne!(ProgramKey::of_front_end(&fe_a), ProgramKey::of_front_end(&fe_b));
    }

    #[test]
    fn infeasible_simulations_are_cached_errors() {
        let ctx = ModelContext::new(Gpu::K20.spec());
        let mut ast = KernelId::MatVec2D.ast(64);
        ast.shared[0].scales_with_block = false;
        ast.shared[0].elems = 40 * 1024 / 4;
        let mut params = TuningParams::with_geometry(128, 48);
        params.pl = oriole_codegen::PreferredL1::Kb48;
        let k = compile(&ast, Gpu::K20.spec(), params).unwrap();
        let a = ctx.simulate(&k, 64).unwrap_err();
        let b = ctx.simulate(&k, 64).unwrap_err();
        assert_eq!(a, b);
        assert_eq!(ctx.stats().report_misses, 1);
    }
}
