//! Deterministic workload generators.
//!
//! All generators are seeded (`rand::rngs::StdRng`), so every test,
//! example and experiment sees identical data run-to-run — noise belongs
//! to the simulator's measurement model, not to the inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major `n × n` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Dimension.
    pub n: usize,
    /// Row-major data, `n * n` elements.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Element accessor (row, col).
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Mutable element accessor.
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }

    /// The transpose (used by reference checks).
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix { n: self.n, data: vec![0.0; self.n * self.n] };
        for i in 0..self.n {
            for j in 0..self.n {
                *t.at_mut(j, i) = self.at(i, j);
            }
        }
        t
    }
}

/// A 3-D scalar field on an `n × n × n` grid, x-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3d {
    /// Edge length.
    pub n: usize,
    /// `n³` cell values.
    pub data: Vec<f64>,
}

impl Grid3d {
    /// Cell accessor.
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[(i * self.n + j) * self.n + k]
    }

    /// Mutable cell accessor.
    pub fn at_mut(&mut self, i: usize, j: usize, k: usize) -> &mut f64 {
        &mut self.data[(i * self.n + j) * self.n + k]
    }

    /// Whether the cell lies on the domain boundary.
    pub fn is_boundary(&self, i: usize, j: usize, k: usize) -> bool {
        i == 0 || j == 0 || k == 0 || i == self.n - 1 || j == self.n - 1 || k == self.n - 1
    }
}

/// Generates an `n × n` matrix with entries uniform in `[-1, 1)`.
pub fn matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix { n, data: (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect() }
}

/// Generates a length-`n` vector with entries uniform in `[-1, 1)`.
pub fn vector(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Generates an `n³` grid with entries uniform in `[0, 1)` (temperatures
/// for the ignition stencil must be non-negative so `exp` stays bounded).
pub fn grid3d(n: usize, seed: u64) -> Grid3d {
    let mut rng = StdRng::seed_from_u64(seed);
    Grid3d { n, data: (0..n * n * n).map(|_| rng.gen_range(0.0..1.0)).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(matrix(16, 7), matrix(16, 7));
        assert_eq!(vector(16, 7), vector(16, 7));
        assert_eq!(grid3d(8, 7), grid3d(8, 7));
        // Different seeds → different data.
        assert_ne!(matrix(16, 7), matrix(16, 8));
    }

    #[test]
    fn matrix_transpose_involution() {
        let m = matrix(12, 3);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.at(3, 5), m.transposed().at(5, 3));
    }

    #[test]
    fn grid_boundary_classification() {
        let g = grid3d(4, 1);
        assert!(g.is_boundary(0, 2, 2));
        assert!(g.is_boundary(3, 2, 2));
        assert!(g.is_boundary(1, 0, 2));
        assert!(!g.is_boundary(1, 2, 2));
        // All corners are boundary.
        assert!(g.is_boundary(0, 0, 0));
        assert!(g.is_boundary(3, 3, 3));
    }

    #[test]
    fn values_in_expected_ranges() {
        let m = matrix(32, 5);
        assert!(m.data.iter().all(|v| (-1.0..1.0).contains(v)));
        let g = grid3d(8, 5);
        assert!(g.data.iter().all(|v| (0.0..1.0).contains(v)));
    }
}
