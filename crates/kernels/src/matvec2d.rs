//! matVec2D: `y = A x` with a 2-D thread decomposition (Table IV, row 4).
//!
//! Unlike ATAX/BiCG's row-per-thread scheme, the Orio-generated matVec2D
//! kernel uses a **two-dimensional decomposition**: a warp cooperates on
//! each row, with lanes striding across columns. Consequences that shape
//! its tuning behaviour:
//!
//! * Lanes read consecutive `A[i][j..j+32]` elements → **coalesced**
//!   accesses (vs. ATAX's strided row walk);
//! * parallelism is `32·N` lanes instead of `N` threads, so *large*
//!   blocks still fill the device — and the per-block shared-memory
//!   reduction amortizes better with more warps per block. This is why
//!   the paper's exhaustive search (Fig. 4/Table V) finds matVec2D's best
//!   thread counts in the *high* range;
//! * extra 2-D index arithmetic per element raises the FLOPS-class count,
//!   putting measured intensity above the 4.0 rule threshold (Table VI:
//!   4.6–7.2) and steering the rule-based heuristic to the upper band.

use oriole_ir::{
    AccessPattern, AluOp, KernelAst, Loop, MemSpace, SharedDecl, SizeExpr, Stmt, TripCount,
};

/// Lanes cooperating on one matrix row (one warp).
pub const LANES_PER_ROW: u32 = 32;

/// Builds the matVec2D kernel AST for an `n × n` matrix.
pub fn ast(_n: u64) -> KernelAst {
    let mut k = KernelAst::new("matvec2d");
    // Per-thread shared slot for the intra-block reduction tree.
    k.shared.push(SharedDecl {
        name: "partial".into(),
        elem_bytes: 4,
        elems: 1,
        scales_with_block: true,
    });
    // Shared tile of the x vector, filled cooperatively.
    k.shared.push(SharedDecl {
        name: "x_tile".into(),
        elem_bytes: 4,
        elems: 256,
        scales_with_block: false,
    });

    // Cooperative x-tile fill: the block streams the whole x vector into
    // shared memory, `TC` elements per step — per-thread work is `N/TC`,
    // so global x traffic *falls* as blocks grow. This reuse is the
    // structural reason matVec2D rewards large blocks (paper Fig. 4).
    let tile_fill = Stmt::Loop(Loop {
        trip: TripCount::BlockShare(SizeExpr::N),
        unrollable: false,
        body: vec![
            Stmt::ops(AluOp::AddI32, 1),
            Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
            Stmt::store(MemSpace::Shared, AccessPattern::Coalesced, 1),
        ],
    });

    // Each lane covers N/32 columns of its row.
    let inner = Stmt::Loop(Loop {
        trip: TripCount::Size(SizeExpr::new(1.0 / f64::from(LANES_PER_ROW), 1)),
        unrollable: true,
        body: vec![
            // 2-D addressing with 64-bit pointer math: row*N + lane +
            // iter*32, widened for both the A and x pointers.
            Stmt::ops(AluOp::MulI32, 1),
            Stmt::ops(AluOp::AddI32, 2),
            Stmt::ops(AluOp::Cvt64, 2),
            Stmt::ops(AluOp::BitI32, 1),
            // A[i][j]: coalesced across lanes.
            Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
            // x[j]: from the shared tile.
            Stmt::load(MemSpace::Shared, AccessPattern::Coalesced, 1),
            Stmt::ops(AluOp::FmaF32, 1),
        ],
    });

    // log2(32) = 5 warp-shuffle reduction steps (butterfly), then one
    // shared-memory exchange for the cross-warp combine.
    let reduction = Stmt::Loop(Loop {
        trip: TripCount::Const(5),
        unrollable: false,
        body: vec![
            // Shuffle-down of the partial sum plus the accumulate.
            Stmt::ops(AluOp::ShuffleF32, 1),
            Stmt::ops(AluOp::BitI32, 1),
            Stmt::ops(AluOp::AddF32, 1),
        ],
    });
    let cross_warp = vec![
        Stmt::store(MemSpace::Shared, AccessPattern::Coalesced, 1),
        Stmt::SyncThreads,
        Stmt::load(MemSpace::Shared, AccessPattern::Coalesced, 1),
        Stmt::ops(AluOp::AddF32, 1),
    ];

    let mut outer_body = vec![
        // Row/lane decomposition: row = gid/32, lane = gid%32.
        Stmt::ops(AluOp::BitI32, 1),
        Stmt::ops(AluOp::MulI32, 1),
        tile_fill,
        Stmt::SyncThreads,
        inner,
        reduction,
    ];
    outer_body.extend(cross_warp);
    // Lane 0 writes y[i].
    outer_body.push(Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1));

    k.body = vec![Stmt::Loop(Loop {
        // 32 lanes per row → 32·N work items.
        trip: TripCount::GridStride(SizeExpr::new(f64::from(LANES_PER_ROW), 1)),
        unrollable: false,
        body: outer_body,
    })];
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Family;
    use oriole_ir::{expected_mix_of, LaunchGeometry};

    #[test]
    fn structure_and_shared_memory() {
        let k = ast(128);
        assert_eq!(k.loop_depth(), 2);
        assert_eq!(k.shared.len(), 2);
        // Block-scaled reduction slots (4 B/thread) + the fixed 1 KiB
        // x-tile.
        assert_eq!(k.shared_bytes(256), 256 * 4 + 1024);
        assert_eq!(k.shared_bytes(1024), 1024 * 4 + 1024);
    }

    #[test]
    fn fp32_executions_match_analytic_formula() {
        let n = 64u64;
        let geom = LaunchGeometry::new(n, 256, 8);
        let mix = expected_mix_of(&ast(n), Family::Kepler, geom);
        let total_fp32 =
            mix.get(oriole_arch::OpClass::FpIns32) * geom.total_threads() as f64;
        // FpIns32 executions: N² dot-product FMAs, 5 shuffle-reduction
        // adds per lane (32N lanes), and one cross-warp add per lane.
        let expected = (n * n + 5 * 32 * n + 32 * n) as f64;
        let rel = (total_fp32 - expected).abs() / expected;
        assert!(rel < 0.02, "{total_fp32} vs {expected}");
    }

    #[test]
    fn intensity_above_threshold() {
        let geom = LaunchGeometry::new(256, 256, 8);
        let i = expected_mix_of(&ast(256), Family::Kepler, geom).classes().intensity();
        assert!(i > 4.0, "matvec2d intensity {i} must exceed the 4.0 rule threshold");
    }

    #[test]
    fn parallelism_is_32x_rows() {
        // With 32·N = 8192 work items at N=256, a 1024-thread launch still
        // has 8 items per thread; ATAX would have one row per 4 threads.
        let k = ast(256);
        let Stmt::Loop(outer) = &k.body[0] else { panic!("outer loop") };
        assert_eq!(outer.trip.eval(256, 512, 2), 8.0);
    }
}
