//! # oriole-kernels — the paper's benchmark kernels (Table IV)
//!
//! Four CUDA kernels drive the paper's evaluation; this crate encodes each
//! as a [`KernelAst`](oriole_ir::KernelAst) whose loop structure, operation
//! mix, memory-access patterns and divergence behaviour match the CUDA
//! source Orio generates:
//!
//! | Kernel | Category | Operation |
//! |---|---|---|
//! | [`atax`] | elementary linear algebra | `y = Aᵀ(Ax)` |
//! | [`bicg`] | linear solvers (BiCGStab subkernel) | `q = Ap`, `s = Aᵀr` |
//! | [`ex14fj`] | 3-D Jacobi computation | solid-fuel-ignition stencil |
//! | [`matvec2d`] | elementary linear algebra | `y = Ax` |
//!
//! Each module also provides a CPU *reference implementation* (the actual
//! math) plus analytic operation-count formulas; tests cross-check the AST
//! encodings against both, so the resource model cannot silently drift
//! from the semantics.
//!
//! [`workload`] generates deterministic random inputs for the reference
//! implementations, and [`suite`] returns all four kernels with the input
//! sizes used in §IV-A ({32..512}, ex14FJ {8..128}).

#![warn(missing_docs)]

pub mod atax;
pub mod bicg;
pub mod ex14fj;
pub mod extras;
pub mod matvec2d;
pub mod reference;
pub mod synthetic;
pub mod workload;

use oriole_ir::KernelAst;

/// Identifies one of the paper's benchmark kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelId {
    /// `y = Aᵀ(Ax)` — two passes over `A`, one transposed.
    Atax,
    /// BiCGStab subkernel: `q = Ap` and `s = Aᵀr`.
    Bicg,
    /// 3-D Jacobi stencil from the solid-fuel ignition example.
    Ex14Fj,
    /// `y = Ax` row-per-thread matrix–vector multiply.
    MatVec2D,
}

/// All four kernels in Table IV order.
pub const ALL_KERNELS: [KernelId; 4] =
    [KernelId::Atax, KernelId::Bicg, KernelId::Ex14Fj, KernelId::MatVec2D];

impl KernelId {
    /// Paper's kernel name.
    pub fn name(self) -> &'static str {
        match self {
            KernelId::Atax => "atax",
            KernelId::Bicg => "bicg",
            KernelId::Ex14Fj => "ex14fj",
            KernelId::MatVec2D => "matvec2d",
        }
    }

    /// Parses the paper's kernel names (several spellings accepted).
    pub fn parse(s: &str) -> Option<KernelId> {
        match s.trim().to_ascii_lowercase().as_str() {
            "atax" => Some(KernelId::Atax),
            "bicg" => Some(KernelId::Bicg),
            "ex14fj" | "ex14" => Some(KernelId::Ex14Fj),
            "matvec2d" | "matvec" => Some(KernelId::MatVec2D),
            _ => None,
        }
    }

    /// Builds the kernel AST for problem size `n`.
    pub fn ast(self, n: u64) -> KernelAst {
        match self {
            KernelId::Atax => atax::ast(n),
            KernelId::Bicg => bicg::ast(n),
            KernelId::Ex14Fj => ex14fj::ast(n),
            KernelId::MatVec2D => matvec2d::ast(n),
        }
    }

    /// The five input sizes the paper evaluates for this kernel (§IV-A):
    /// {32, 64, 128, 256, 512} except ex14FJ, which uses {8..128} because
    /// its domain is `N³` cells.
    pub fn input_sizes(self) -> [u64; 5] {
        match self {
            KernelId::Ex14Fj => [8, 16, 32, 64, 128],
            _ => [32, 64, 128, 256, 512],
        }
    }

    /// Table IV "Category" column.
    pub fn category(self) -> &'static str {
        match self {
            KernelId::Atax => "Elementary linear algebra",
            KernelId::Bicg => "Linear solvers",
            KernelId::Ex14Fj => "3-D Jacobi computation",
            KernelId::MatVec2D => "Elementary linear algebra",
        }
    }

    /// Table IV "Operation" column.
    pub fn operation(self) -> &'static str {
        match self {
            KernelId::Atax => "y = A^T (A x)",
            KernelId::Bicg => "q = A p, s = A^T r",
            KernelId::Ex14Fj => "F(x) = A(x) x - b = 0",
            KernelId::MatVec2D => "y = A x",
        }
    }

    /// Number of scalar work items the kernel distributes over the grid
    /// (`N` rows for the matrix kernels, `N³` cells for the stencil).
    pub fn work_items(self, n: u64) -> u64 {
        match self {
            KernelId::Ex14Fj => n * n * n,
            _ => n,
        }
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The full benchmark suite: every kernel paired with its paper input
/// sizes.
pub fn suite() -> Vec<(KernelId, [u64; 5])> {
    ALL_KERNELS.iter().map(|&k| (k, k.input_sizes())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in ALL_KERNELS {
            assert_eq!(KernelId::parse(k.name()), Some(k));
        }
        assert_eq!(KernelId::parse("ATAX"), Some(KernelId::Atax));
        assert_eq!(KernelId::parse("gemm"), None);
    }

    #[test]
    fn suite_matches_paper_sizes() {
        let s = suite();
        assert_eq!(s.len(), 4);
        assert_eq!(KernelId::Atax.input_sizes(), [32, 64, 128, 256, 512]);
        assert_eq!(KernelId::Ex14Fj.input_sizes(), [8, 16, 32, 64, 128]);
    }

    #[test]
    fn asts_build_and_validate() {
        for k in ALL_KERNELS {
            let ast = k.ast(64);
            assert_eq!(ast.name, k.name());
            assert!(ast.loop_depth() >= 1, "{k} must contain loops");
        }
    }

    #[test]
    fn work_items_scale() {
        assert_eq!(KernelId::Atax.work_items(128), 128);
        assert_eq!(KernelId::Ex14Fj.work_items(16), 4096);
    }
}
