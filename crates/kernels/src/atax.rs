//! ATAX: `y = Aᵀ (A x)` (Table IV, row 1).
//!
//! The Orio-generated CUDA assigns **one matrix row per thread** via a
//! grid-stride loop and runs two passes:
//!
//! 1. `tmp = A·x` — thread `i` walks row `i`. Consecutive threads read
//!    `A[i][j]` and `A[i+1][j]`, which sit `N` elements apart in the
//!    row-major layout: a **strided** (uncoalesced) pattern, the
//!    performance-defining property of this kernel.
//! 2. `y = Aᵀ·tmp` — thread `i` walks column `i`, so consecutive threads
//!    read consecutive addresses: **coalesced**.
//!
//! With only `N ≤ 512` rows of parallelism, large blocks concentrate the
//! whole kernel on one or two SMs; small blocks spread it across the
//! device. This is the structural reason the paper's exhaustive search
//! (Fig. 4, Table V) finds ATAX's best thread counts in the *low* range —
//! and the low arithmetic intensity (Table VI: 3.4) keeps the rule-based
//! heuristic in the lower thread band too.

use oriole_ir::{
    AccessPattern, AluOp, KernelAst, Loop, MemSpace, SizeExpr, Stmt, TripCount,
};

/// Builds the ATAX kernel AST for an `n × n` matrix.
///
/// `n` is carried symbolically (trip counts are [`SizeExpr`]s); the value
/// only selects nothing here, but is kept for interface symmetry with
/// [`crate::ex14fj::ast`], whose divergence fraction depends on `n`.
pub fn ast(_n: u64) -> KernelAst {
    let mut k = KernelAst::new("atax");

    // Pass 1: tmp = A·x, one row per grid-stride thread.
    let pass1 = Stmt::Loop(Loop {
        trip: TripCount::GridStride(SizeExpr::N),
        unrollable: false,
        body: vec![
            // Row-base offset: i*N, widened to a 64-bit pointer.
            Stmt::ops(AluOp::MulI32, 1),
            Stmt::ops(AluOp::Cvt64, 1),
            Stmt::Loop(Loop {
                trip: TripCount::Size(SizeExpr::N),
                unrollable: true,
                body: vec![
                    // A[i][j]: stride-N across the warp.
                    Stmt::Load(oriole_ir::MemStmt {
                        space: MemSpace::Global,
                        pattern: AccessPattern::Strided(32),
                        elem_bytes: 4,
                        count: 1,
                    }),
                    // x[j]: every lane reads the same element.
                    Stmt::load(MemSpace::Global, AccessPattern::Broadcast, 1),
                    // Column pointer bump (64-bit) and the accumulate.
                    Stmt::ops(AluOp::AddI32, 1),
                    Stmt::ops(AluOp::FmaF32, 1),
                ],
            }),
            // tmp[i]: one element per thread, coalesced.
            Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
        ],
    });

    // Device-wide synchronization between the passes (separate kernel
    // launch in the CUDA original; a barrier models its ordering cost).
    let sync = Stmt::SyncThreads;

    // Pass 2: y = Aᵀ·tmp, one column per grid-stride thread.
    let pass2 = Stmt::Loop(Loop {
        trip: TripCount::GridStride(SizeExpr::N),
        unrollable: false,
        body: vec![
            Stmt::ops(AluOp::AddI32, 1),
            Stmt::ops(AluOp::Cvt64, 1),
            Stmt::Loop(Loop {
                trip: TripCount::Size(SizeExpr::N),
                unrollable: true,
                body: vec![
                    // A[j][i]: consecutive lanes hit consecutive columns.
                    Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
                    // tmp[j]: broadcast.
                    Stmt::load(MemSpace::Global, AccessPattern::Broadcast, 1),
                    // Row pointer advances by N elements (64-bit).
                    Stmt::ops(AluOp::AddI32, 1),
                    Stmt::ops(AluOp::FmaF32, 1),
                ],
            }),
            Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
        ],
    });

    k.body = vec![pass1, sync, pass2];
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Family;
    use oriole_ir::{expected_mix_of, LaunchGeometry};

    // Small shim: lower + expected mix in one call for test brevity.
    fn mix(n: u64, tc: u32, bc: u32) -> oriole_ir::ClassMix {
        expected_mix_of(&ast(n), Family::Kepler, LaunchGeometry::new(n, tc, bc)).classes()
    }

    #[test]
    fn two_passes_and_a_barrier() {
        let k = ast(128);
        assert_eq!(k.body.len(), 3);
        assert_eq!(k.loop_depth(), 2);
        assert!(!k.has_divergence());
    }

    #[test]
    fn fma_count_matches_analytic_flops() {
        // Expected FMA executions per thread × total threads = 2N²
        // (one FMA per matrix element per pass).
        let n = 64u64;
        let (tc, bc) = (128u32, 8u32);
        let geom = LaunchGeometry::new(n, tc, bc);
        let program = oriole_ir::lower(
            &ast(n),
            Family::Kepler,
            oriole_ir::lower::LowerOptions::default(),
        );
        let per_thread = oriole_ir::count::expected_mix(&program, geom);
        let fma_total =
            per_thread.get(oriole_arch::OpClass::FpIns32) * geom.total_threads() as f64;
        // 2 passes × N² FMAs (each FMA = 2 flops → 4N² flops analytic).
        let expected = (crate::reference::flops::atax(n) / 2) as f64;
        let rel = (fma_total - expected).abs() / expected;
        assert!(rel < 0.05, "fma_total {fma_total} vs expected {expected}");
    }

    #[test]
    fn intensity_is_low_band() {
        // ATAX must sit at or below the paper's 4.0 rule threshold.
        let m = mix(256, 128, 8);
        let i = m.intensity();
        assert!(i > 0.5 && i <= 4.0, "intensity {i}");
    }

    #[test]
    fn fma_work_is_geometry_invariant_in_expectation() {
        // The O(N²) dot-product work is fixed; only per-thread overhead
        // (prologue, loop preheaders) scales with the grid. FMA totals
        // must therefore be geometry-invariant.
        let n = 128u64;
        let program = oriole_ir::lower(
            &ast(n),
            Family::Kepler,
            oriole_ir::lower::LowerOptions::default(),
        );
        let fma_total = |tc: u32, bc: u32| {
            let geom = LaunchGeometry::new(n, tc, bc);
            oriole_ir::count::expected_mix(&program, geom)
                .get(oriole_arch::OpClass::FpIns32)
                * geom.total_threads() as f64
        };
        let a = fma_total(64, 8);
        let b = fma_total(512, 16);
        let rel = (a - b).abs() / a;
        assert!(rel < 0.01, "{a} vs {b}");
    }
}
