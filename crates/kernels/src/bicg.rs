//! BiCG: `q = A p`, `s = Aᵀ r` (Table IV, row 2).
//!
//! The BiCGStab subkernel computes two matrix–vector products against the
//! same matrix — one direct, one transposed. The Orio-generated CUDA
//! fuses them into a single row-per-thread grid-stride loop: thread `i`
//! accumulates `q[i] = Σⱼ A[i][j]·p[j]` while also contributing column
//! walks for `s`. The fusion doubles memory traffic per FMA relative to
//! ATAX, which is why the paper measures BiCG's arithmetic intensity
//! *lower* (1.8 vs 3.4, Table VI) while the preferred thread range stays
//! low (Table V) for the same row-parallelism reason.

use oriole_ir::{
    AccessPattern, AluOp, KernelAst, Loop, MemSpace, MemStmt, SizeExpr, Stmt, TripCount,
};

/// Builds the BiCG kernel AST for an `n × n` matrix.
pub fn ast(_n: u64) -> KernelAst {
    let mut k = KernelAst::new("bicg");

    let inner = Stmt::Loop(Loop {
        trip: TripCount::Size(SizeExpr::N),
        unrollable: true,
        body: vec![
            // A[i][j] for the q-pass: strided row walk.
            Stmt::Load(MemStmt {
                space: MemSpace::Global,
                pattern: AccessPattern::Strided(32),
                elem_bytes: 4,
                count: 1,
            }),
            // A[j][i] for the s-pass: coalesced column walk.
            Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
            // p[j] and r[j]: broadcast vector elements.
            Stmt::load(MemSpace::Global, AccessPattern::Broadcast, 1),
            Stmt::load(MemSpace::Global, AccessPattern::Broadcast, 1),
            // Two accumulations.
            Stmt::ops(AluOp::FmaF32, 2),
        ],
    });

    k.body = vec![Stmt::Loop(Loop {
        trip: TripCount::GridStride(SizeExpr::N),
        unrollable: false,
        body: vec![
            // Row/column base offsets.
            Stmt::ops(AluOp::MulI32, 1),
            inner,
            // q[i] and s[i].
            Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
            Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
        ],
    })];
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Family;
    use oriole_ir::{expected_mix_of, LaunchGeometry};

    #[test]
    fn structure() {
        let k = ast(64);
        assert_eq!(k.loop_depth(), 2);
        assert!(!k.has_divergence());
        assert!(k.shared.is_empty());
    }

    #[test]
    fn intensity_below_atax_and_threshold() {
        let n = 256;
        let geom = LaunchGeometry::new(n, 128, 8);
        let bicg_i =
            expected_mix_of(&ast(n), Family::Kepler, geom).classes().intensity();
        let atax_i =
            expected_mix_of(&crate::atax::ast(n), Family::Kepler, geom).classes().intensity();
        assert!(bicg_i <= 4.0, "bicg intensity {bicg_i}");
        assert!(bicg_i < atax_i, "bicg {bicg_i} !< atax {atax_i}");
    }

    #[test]
    fn fma_executions_match_two_passes() {
        let n = 32u64;
        let geom = LaunchGeometry::new(n, 64, 4);
        let mix = expected_mix_of(&ast(n), Family::Maxwell, geom);
        let total_fma =
            mix.get(oriole_arch::OpClass::FpIns32) * geom.total_threads() as f64;
        let expected = (crate::reference::flops::bicg(n) / 2) as f64;
        let rel = (total_fma - expected).abs() / expected;
        assert!(rel < 0.05, "{total_fma} vs {expected}");
    }

    #[test]
    fn memory_heavier_than_atax_per_fma() {
        // BiCG loads 4 words per 2 FMAs (2.0/FMA); ATAX 2 per 1 (2.0) —
        // but BiCG's stores double up, so MEM/FLOP must be ≥ ATAX's.
        let n = 128;
        let geom = LaunchGeometry::new(n, 128, 8);
        let b = expected_mix_of(&ast(n), Family::Kepler, geom).classes();
        let a = expected_mix_of(&crate::atax::ast(n), Family::Kepler, geom).classes();
        assert!(b.mem / b.flops >= a.mem / a.flops);
    }
}
