//! Synthetic kernels for controlled experiments.
//!
//! These are not part of the paper's Table IV benchmark set; they isolate
//! single mechanisms for the Fig. 1 divergence experiment and for
//! ablation benches.

use oriole_ir::{
    AccessPattern, AluOp, Branch, DivergenceKind, KernelAst, Loop, MemSpace, SizeExpr, Stmt,
    TripCount,
};

/// A `classes`-way divergent switch: threads fall into `classes` equal
/// groups by `tid % classes`, each taking its own arithmetic path. A warp
/// containing all classes executes every path serially — the paper's
/// Fig. 1 "performance loss incurred by branch divergence" scenario.
///
/// `classes = 1` is the control: a uniform branch every thread takes.
pub fn divergent_switch(classes: u32, work_per_class: u32) -> KernelAst {
    let classes = classes.max(1);
    let mut k = KernelAst::new("divergent_switch");
    let path = |ops: u32| vec![Stmt::ops(AluOp::FmaF32, ops)];

    // A chain of `classes` guarded sections. Thread-level, each executes
    // with probability 1/classes; warp-level, a 32-lane warp almost
    // surely contains every class, so all sections execute.
    let mut body: Vec<Stmt> = vec![Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1)];
    for _ in 0..classes {
        body.push(Stmt::If(Branch {
            divergence: if classes > 1 {
                DivergenceKind::ThreadDependent
            } else {
                DivergenceKind::Uniform
            },
            taken_fraction: 1.0 / f64::from(classes),
            then_body: path(work_per_class),
            else_body: vec![],
        }));
    }
    body.push(Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1));

    k.body = vec![Stmt::Loop(Loop {
        trip: TripCount::GridStride(SizeExpr::N2),
        unrollable: false,
        body,
    })];
    k
}

/// A pure-compute kernel (no memory traffic beyond one load/store pair):
/// used by benches to isolate issue-throughput behaviour.
pub fn compute_bound(flops_per_item: u32) -> KernelAst {
    let mut k = KernelAst::new("compute_bound");
    k.body = vec![Stmt::Loop(Loop {
        trip: TripCount::GridStride(SizeExpr::N2),
        unrollable: true,
        body: vec![
            Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
            Stmt::ops(AluOp::FmaF32, flops_per_item),
            Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
        ],
    })];
    k
}

/// A streaming kernel with a configurable lane stride: used by benches to
/// isolate the coalescing/bandwidth behaviour.
pub fn memory_bound(stride: u32) -> KernelAst {
    let mut k = KernelAst::new("memory_bound");
    let pattern = if stride <= 1 { AccessPattern::Coalesced } else { AccessPattern::Strided(stride) };
    k.body = vec![Stmt::Loop(Loop {
        trip: TripCount::GridStride(SizeExpr::N2),
        unrollable: true,
        body: vec![
            Stmt::Load(oriole_ir::MemStmt { space: MemSpace::Global, pattern, elem_bytes: 4, count: 2 }),
            Stmt::ops(AluOp::AddF32, 1),
            Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
        ],
    })];
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_kernel_shapes() {
        let k1 = divergent_switch(1, 32);
        assert!(!k1.has_divergence());
        let k8 = divergent_switch(8, 32);
        assert!(k8.has_divergence());
        // classes=0 clamps to 1.
        let k0 = divergent_switch(0, 32);
        assert!(!k0.has_divergence());
    }

    #[test]
    fn switch_thread_level_work_is_class_invariant() {
        use oriole_arch::Family;
        use oriole_ir::{expected_mix_of, LaunchGeometry};
        // Expected (thread-level) FLOPS stay ~constant as classes grow:
        // each thread still takes exactly one path on average.
        let geom = LaunchGeometry::new(64, 128, 32);
        let f = |classes| {
            expected_mix_of(&divergent_switch(classes, 64), Family::Kepler, geom)
                .classes()
                .flops
        };
        let base = f(1);
        for classes in [2u32, 8, 32] {
            let v = f(classes);
            assert!((v / base - 1.0).abs() < 0.25, "classes={classes}: {v} vs {base}");
        }
    }

    #[test]
    fn helper_kernels_compile() {
        use oriole_arch::Gpu;
        use oriole_codegen::{compile, TuningParams};
        for ast in [divergent_switch(4, 16), compute_bound(32), memory_bound(32)] {
            compile(&ast, Gpu::M40.spec(), TuningParams::with_geometry(128, 48))
                .expect("synthetic kernels compile");
        }
    }
}
