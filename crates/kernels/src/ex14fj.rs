//! ex14FJ: 3-D solid-fuel-ignition Jacobi computation (Table IV, row 3).
//!
//! The kernel evaluates `F(x) = A(x)·x − b` with
//! `A(u)v ≈ −∇·(κ(u)∇v)` on an `N³` rectangular grid — the Jacobian
//! computation of PETSc's ex14 solid-fuel ignition example in 3-D (the
//! paper's footnote 2). Properties that shape its tuning behaviour:
//!
//! * `N³` cells of parallelism (up to 2M at N=128): any launch geometry
//!   keeps the device saturated, so block-dispatch amortization favours
//!   mid-to-large blocks (paper Fig. 4's diffuse Rank-1 pattern);
//! * heavy per-cell arithmetic — a 7-point stencil with a nonlinear
//!   `λ·exp(u)` reaction term and coefficient averaging — pushing
//!   intensity well above the rule threshold (Table VI: 12.7–16.3);
//! * a **divergent boundary branch**: cells on the domain surface take a
//!   cheap pass-through path while interior cells compute the stencil.
//!   The boundary fraction `1 − (1−2/N)³` makes warp divergence an
//!   explicit function of `N` — the Fig. 1 effect in a real kernel.

use oriole_ir::{
    AccessPattern, AluOp, Branch, DivergenceKind, KernelAst, Loop, MemSpace, SizeExpr,
    Stmt, TripCount,
};

/// Fraction of grid cells on the boundary of an `n³` domain.
pub fn boundary_fraction(n: u64) -> f64 {
    if n <= 2 {
        return 1.0;
    }
    let interior = ((n - 2) as f64 / n as f64).powi(3);
    1.0 - interior
}

/// Builds the ex14FJ kernel AST for an `n³` grid. Unlike the matrix
/// kernels, the AST depends on `n`: the divergent-branch fraction is the
/// boundary fraction of the domain.
pub fn ast(n: u64) -> KernelAst {
    let mut k = KernelAst::new("ex14fj");

    // Interior path: 7-point stencil + nonlinear reaction term.
    let interior = vec![
        // Centre load streams from DRAM (first touch, coalesced: lanes
        // walk the contiguous k direction).
        Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
        // The six neighbours were brought in by adjacent cells' centre
        // loads and hit the cache — broadcast-class service (each value
        // is re-read rather than re-fetched from DRAM).
        Stmt::load(MemSpace::Global, AccessPattern::Broadcast, 6),
        // Laplacian: 6 adds + centre scale.
        Stmt::ops(AluOp::AddF32, 6),
        Stmt::ops(AluOp::MulF32, 1),
        // κ(u) coefficient evaluation and harmonic averaging on 6 faces:
        // per face two adds, two multiplies, a divide (the harmonic mean)
        // and two fused accumulates for the flux contribution.
        Stmt::ops(AluOp::AddF32, 12),
        Stmt::ops(AluOp::MulF32, 12),
        Stmt::ops(AluOp::DivF32, 2),
        Stmt::ops(AluOp::FmaF32, 24),
        // Nonlinear reaction: λ·exp(u) and the Jacobian's exp-derivative
        // term (two exponentials with scale/accumulate each).
        Stmt::ops(AluOp::ExpF32, 2),
        Stmt::ops(AluOp::FmaF32, 4),
        // Final residual combine and diagonal scaling.
        Stmt::ops(AluOp::AddF32, 2),
        Stmt::ops(AluOp::MulF32, 2),
        Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
    ];

    // Boundary path: identity pass-through.
    let boundary = vec![
        Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
        Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
    ];

    k.body = vec![Stmt::Loop(Loop {
        trip: TripCount::GridStride(SizeExpr::N3),
        unrollable: false,
        body: vec![
            // 3-D index decode: two divides-by-N via multiply/shift
            // (strength-reduced) and remainders.
            Stmt::ops(AluOp::MulI32, 2),
            Stmt::ops(AluOp::AddI32, 2),
            Stmt::ops(AluOp::BitI32, 2),
            Stmt::If(Branch {
                divergence: DivergenceKind::ThreadDependent,
                taken_fraction: boundary_fraction(n),
                then_body: boundary,
                else_body: interior,
            }),
        ],
    })];
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Family;
    use oriole_ir::{expected_mix_of, LaunchGeometry};

    #[test]
    fn boundary_fraction_shrinks_with_n() {
        assert_eq!(boundary_fraction(2), 1.0);
        let f8 = boundary_fraction(8);
        let f32 = boundary_fraction(32);
        let f128 = boundary_fraction(128);
        assert!(f8 > f32 && f32 > f128);
        // N=8: 1-(6/8)³ = 0.578125.
        assert!((f8 - 0.578125).abs() < 1e-12);
        assert!(f128 < 0.05);
    }

    #[test]
    fn kernel_is_divergent() {
        let k = ast(32);
        assert!(k.has_divergence());
        assert_eq!(k.loop_depth(), 1);
    }

    #[test]
    fn intensity_is_high_band() {
        let geom = LaunchGeometry::new(64, 256, 64);
        let i = expected_mix_of(&ast(64), Family::Kepler, geom).classes().intensity();
        assert!(i > 4.0, "ex14fj intensity {i} must exceed the rule threshold");
    }

    #[test]
    fn interior_flops_dominate_at_large_n() {
        // At N=128 the boundary fraction is <5%, so FLOPS-per-cell should
        // approach the interior cost; at N=8 over half the cells take the
        // cheap path.
        let geom_small = LaunchGeometry::new(8, 64, 8);
        let geom_large = LaunchGeometry::new(128, 64, 8);
        let per_cell = |n: u64, geom: LaunchGeometry| {
            let mix = expected_mix_of(&ast(n), Family::Kepler, geom);
            mix.classes().flops * geom.total_threads() as f64 / (n * n * n) as f64
        };
        let small = per_cell(8, geom_small);
        let large = per_cell(128, geom_large);
        assert!(large > small, "large-N per-cell flops {large} !> {small}");
    }

    #[test]
    fn work_scales_cubically() {
        let k = ast(64);
        let Stmt::Loop(outer) = &k.body[0] else { panic!() };
        // 64³ = 262144 cells over 8192 threads = 32 iterations.
        assert_eq!(outer.trip.eval(64, 512, 16), 32.0);
    }
}
