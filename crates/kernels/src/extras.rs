//! Extension kernels beyond the paper's Table IV.
//!
//! The paper's methodology claims generality ("our static analysis tools
//! will work with any CUDA kernel code", §VII). These PolyBench-style
//! kernels — the obvious next candidates after atax/bicg — exercise that
//! claim: they reuse the same AST vocabulary but combine access patterns
//! differently, and the whole pipeline (compile → analyze → simulate →
//! tune) accepts them with no special cases.

use oriole_ir::{
    AccessPattern, AluOp, KernelAst, Loop, MemSpace, MemStmt, SizeExpr, Stmt, TripCount,
};

/// MVT: `x1 = x1 + A·y1`, `x2 = x2 + Aᵀ·y2` — two independent
/// matrix–vector products, one transposed. Structurally ATAX without the
/// inter-pass dependency (no barrier), so it parallelizes across both
/// passes at once.
pub fn mvt(_n: u64) -> KernelAst {
    let mut k = KernelAst::new("mvt");
    let pass = |transposed: bool| {
        Stmt::Loop(Loop {
            trip: TripCount::GridStride(SizeExpr::N),
            unrollable: false,
            body: vec![
                Stmt::ops(AluOp::MulI32, 1),
                Stmt::ops(AluOp::Cvt64, 1),
                Stmt::Loop(Loop {
                    trip: TripCount::Size(SizeExpr::N),
                    unrollable: true,
                    body: vec![
                        Stmt::Load(MemStmt {
                            space: MemSpace::Global,
                            pattern: if transposed {
                                AccessPattern::Coalesced
                            } else {
                                AccessPattern::Strided(32)
                            },
                            elem_bytes: 4,
                            count: 1,
                        }),
                        Stmt::load(MemSpace::Global, AccessPattern::Broadcast, 1),
                        Stmt::ops(AluOp::AddI32, 1),
                        Stmt::ops(AluOp::FmaF32, 1),
                    ],
                }),
                // x += acc: read-modify-write.
                Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
                Stmt::ops(AluOp::AddF32, 1),
                Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
            ],
        })
    };
    k.body = vec![pass(false), pass(true)];
    k
}

/// GEMVER: `B = A + u1·v1ᵀ + u2·v2ᵀ; x = βBᵀy + z; w = αBx` — a rank-2
/// update followed by two matvecs. Heavier per-element arithmetic than
/// ATAX (the update adds 2 FMAs per matrix element) with the same
/// row-parallel structure.
pub fn gemver(_n: u64) -> KernelAst {
    let mut k = KernelAst::new("gemver");
    // Phase 1: rank-2 update of A, one row per thread.
    let update = Stmt::Loop(Loop {
        trip: TripCount::GridStride(SizeExpr::N),
        unrollable: false,
        body: vec![
            Stmt::ops(AluOp::MulI32, 1),
            Stmt::Loop(Loop {
                trip: TripCount::Size(SizeExpr::N),
                unrollable: true,
                body: vec![
                    Stmt::Load(MemStmt {
                        space: MemSpace::Global,
                        pattern: AccessPattern::Strided(32),
                        elem_bytes: 4,
                        count: 1,
                    }),
                    Stmt::load(MemSpace::Global, AccessPattern::Broadcast, 2),
                    Stmt::ops(AluOp::FmaF32, 2),
                    Stmt::Store(MemStmt {
                        space: MemSpace::Global,
                        pattern: AccessPattern::Strided(32),
                        elem_bytes: 4,
                        count: 1,
                    }),
                ],
            }),
        ],
    });
    // Phase 2: x = beta*B^T*y + z (coalesced column walk).
    let xpass = Stmt::Loop(Loop {
        trip: TripCount::GridStride(SizeExpr::N),
        unrollable: false,
        body: vec![
            Stmt::Loop(Loop {
                trip: TripCount::Size(SizeExpr::N),
                unrollable: true,
                body: vec![
                    Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
                    Stmt::load(MemSpace::Global, AccessPattern::Broadcast, 1),
                    Stmt::ops(AluOp::FmaF32, 1),
                ],
            }),
            Stmt::ops(AluOp::MulF32, 1),
            Stmt::ops(AluOp::AddF32, 1),
            Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
        ],
    });
    k.body = vec![update, Stmt::SyncThreads, xpass];
    k
}

/// JACOBI2D: the 5-point 2-D stencil sweep — `ex14fj`'s little sibling.
/// All-coalesced/cached loads, a divergent boundary branch with fraction
/// `1 − (1−2/N)²`, `N²` cells of parallelism.
pub fn jacobi2d(n: u64) -> KernelAst {
    let boundary = if n <= 2 {
        1.0
    } else {
        1.0 - ((n - 2) as f64 / n as f64).powi(2)
    };
    let mut k = KernelAst::new("jacobi2d");
    let interior = vec![
        Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
        Stmt::load(MemSpace::Global, AccessPattern::Broadcast, 4),
        Stmt::ops(AluOp::AddF32, 4),
        Stmt::ops(AluOp::MulF32, 1),
        Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
    ];
    let edge = vec![
        Stmt::load(MemSpace::Global, AccessPattern::Coalesced, 1),
        Stmt::store(MemSpace::Global, AccessPattern::Coalesced, 1),
    ];
    k.body = vec![Stmt::Loop(Loop {
        trip: TripCount::GridStride(SizeExpr::N2),
        unrollable: false,
        body: vec![
            Stmt::ops(AluOp::MulI32, 1),
            Stmt::ops(AluOp::BitI32, 1),
            Stmt::If(oriole_ir::Branch {
                divergence: oriole_ir::DivergenceKind::ThreadDependent,
                taken_fraction: boundary,
                then_body: edge,
                else_body: interior,
            }),
        ],
    })];
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::{Family, Gpu};
    use oriole_codegen::{compile, TuningParams};
    use oriole_ir::{expected_mix_of, LaunchGeometry};

    fn all(n: u64) -> Vec<KernelAst> {
        vec![mvt(n), gemver(n), jacobi2d(n)]
    }

    #[test]
    fn extension_kernels_run_the_whole_pipeline() {
        for ast in all(64) {
            for gpu in [Gpu::M2050, Gpu::P100] {
                let kernel =
                    compile(&ast, gpu.spec(), TuningParams::with_geometry(128, 48))
                        .unwrap_or_else(|e| panic!("{}: {e}", ast.name));
                let analysis = oriole_core::analyze(&kernel, 64);
                assert!(analysis.predicted_time > 0.0, "{}", ast.name);
                let report = oriole_sim::simulate(&kernel, 64)
                    .unwrap_or_else(|e| panic!("{}: {e}", ast.name));
                assert!(report.time_ms > 0.0);
                // Disassembly round-trips.
                let parsed = oriole_ir::text::parse(&kernel.disassembly()).unwrap();
                assert_eq!(parsed, kernel.program);
            }
        }
    }

    #[test]
    fn mvt_prefers_small_blocks_like_atax() {
        // Same row-parallel, strided-pass structure → same preference.
        let gpu = Gpu::K20.spec();
        let t = |tc: u32| {
            let kernel = compile(&mvt(512), gpu, TuningParams::with_geometry(tc, 24)).unwrap();
            oriole_sim::simulate(&kernel, 512).unwrap().time_ms
        };
        assert!(t(128) < t(896), "{} !< {}", t(128), t(896));
    }

    #[test]
    fn gemver_intensity_in_low_band() {
        let i = expected_mix_of(&gemver(256), Family::Kepler, LaunchGeometry::new(256, 128, 48))
            .classes()
            .intensity();
        assert!(i <= 4.0, "gemver intensity {i}");
    }

    #[test]
    fn jacobi2d_divergence_shrinks_with_n() {
        assert!(jacobi2d(8).has_divergence());
        let frac = |ast: &KernelAst| {
            let mut out = 0.0;
            ast.visit(&mut |s| {
                if let Stmt::If(b) = s {
                    out = b.taken_fraction;
                }
            });
            out
        };
        assert!(frac(&jacobi2d(8)) > frac(&jacobi2d(128)));
        // 2-D boundary fraction: 1-(6/8)² = 0.4375.
        assert!((frac(&jacobi2d(8)) - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn static_suggestions_apply_to_extensions() {
        // The T* machinery is kernel-agnostic: suggestions come out for
        // extension kernels exactly as for the paper's set.
        let kernel = compile(
            &jacobi2d(128),
            Gpu::M40.spec(),
            TuningParams::with_geometry(128, 48),
        )
        .unwrap();
        let s = oriole_core::suggest::suggest(&kernel);
        assert_eq!(s.thread_counts, vec![64, 128, 256, 512, 1024]);
    }
}
