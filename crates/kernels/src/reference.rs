//! CPU reference semantics and analytic operation counts.
//!
//! The AST encodings in this crate are *resource* models; these functions
//! are the *value* models — the actual mathematics each kernel performs.
//! Tests cross-check the two (e.g. the AST's floating-point operation
//! count at geometry `g` must match the analytic FLOP formula), so the
//! resource model cannot drift from the semantics it claims to describe.

// Index-based loops here mirror the paper's Fortran/C kernel listings
// (and the GPU index arithmetic being modeled) on purpose.
#![allow(clippy::needless_range_loop)]

use crate::workload::{Grid3d, Matrix};

/// λ parameter of the solid-fuel-ignition (Bratu) problem used by ex14FJ.
pub const EX14_LAMBDA: f64 = 6.0;

/// `y = Aᵀ (A x)` — the ATAX kernel.
pub fn atax(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let n = a.n;
    assert_eq!(x.len(), n);
    let mut tmp = vec![0.0; n];
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            acc += a.at(i, j) * x[j];
        }
        tmp[i] = acc;
    }
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            acc += a.at(j, i) * tmp[j];
        }
        y[i] = acc;
    }
    y
}

/// BiCG subkernel: `q = A p` and `s = Aᵀ r`, returned as `(q, s)`.
pub fn bicg(a: &Matrix, p: &[f64], r: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = a.n;
    assert_eq!(p.len(), n);
    assert_eq!(r.len(), n);
    let mut q = vec![0.0; n];
    let mut s = vec![0.0; n];
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            acc += a.at(i, j) * p[j];
        }
        q[i] = acc;
    }
    for j in 0..n {
        let mut acc = 0.0;
        for i in 0..n {
            acc += a.at(i, j) * r[i];
        }
        s[j] = acc;
    }
    (q, s)
}

/// `y = A x` — the matVec2D kernel.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let n = a.n;
    assert_eq!(x.len(), n);
    (0..n)
        .map(|i| (0..n).map(|j| a.at(i, j) * x[j]).sum())
        .collect()
}

/// One Jacobi sweep of the ex14FJ solid-fuel-ignition residual
/// `F(u) = -∇·(∇u) - λ·exp(u)` on the interior of a 3-D grid with
/// homogeneous Dirichlet boundaries; boundary cells pass through.
///
/// Returns the residual field (what the Jacobian-vector kernel of the
/// PETSc ex14 example evaluates each Newton step).
pub fn ex14_residual(u: &Grid3d) -> Grid3d {
    let n = u.n;
    let h = 1.0 / ((n as f64) - 1.0).max(1.0);
    let h2inv = 1.0 / (h * h);
    let mut f = Grid3d { n, data: vec![0.0; n * n * n] };
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                if u.is_boundary(i, j, k) {
                    *f.at_mut(i, j, k) = u.at(i, j, k);
                } else {
                    let c = u.at(i, j, k);
                    let lap = 6.0 * c
                        - u.at(i - 1, j, k)
                        - u.at(i + 1, j, k)
                        - u.at(i, j - 1, k)
                        - u.at(i, j + 1, k)
                        - u.at(i, j, k - 1)
                        - u.at(i, j, k + 1);
                    *f.at_mut(i, j, k) = lap * h2inv - EX14_LAMBDA * c.exp();
                }
            }
        }
    }
    f
}

/// Analytic floating-point operation counts (multiply–add counted as two
/// FLOPs), the denominators for roofline-style sanity checks.
pub mod flops {
    /// ATAX: two `N²`-FMA passes → `4N²`.
    pub fn atax(n: u64) -> u64 {
        4 * n * n
    }

    /// BiCG: two `N²`-FMA passes → `4N²`.
    pub fn bicg(n: u64) -> u64 {
        4 * n * n
    }

    /// matVec: one `N²`-FMA pass → `2N²`.
    pub fn matvec(n: u64) -> u64 {
        2 * n * n
    }

    /// ex14FJ interior cells: 7-point Laplacian (7 FLOPs: 6 subs + 1
    /// scale... counted as 8 with the center multiply), the `λ·exp(u)`
    /// term (exp ≈ 1 FLOP-equivalent + 1 multiply) and the final subtract:
    /// 12 FLOPs per interior cell.
    pub fn ex14(n: u64) -> u64 {
        let interior = n.saturating_sub(2).pow(3);
        12 * interior
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn atax_is_composition_of_matvecs() {
        let a = workload::matrix(24, 11);
        let x = workload::vector(24, 12);
        let tmp = matvec(&a, &x);
        let expected = matvec(&a.transposed(), &tmp);
        close(&atax(&a, &x), &expected);
    }

    #[test]
    fn bicg_halves_match_matvec() {
        let a = workload::matrix(16, 21);
        let p = workload::vector(16, 22);
        let r = workload::vector(16, 23);
        let (q, s) = bicg(&a, &p, &r);
        close(&q, &matvec(&a, &p));
        close(&s, &matvec(&a.transposed(), &r));
    }

    #[test]
    fn matvec_identity() {
        // A = I → y = x.
        let n = 8;
        let mut a = workload::matrix(n, 1);
        a.data.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..n {
            *a.at_mut(i, i) = 1.0;
        }
        let x = workload::vector(n, 2);
        close(&matvec(&a, &x), &x);
    }

    #[test]
    fn ex14_boundary_passthrough_and_interior_residual() {
        let u = workload::grid3d(6, 31);
        let f = ex14_residual(&u);
        // Boundaries pass through.
        assert_eq!(f.at(0, 3, 3), u.at(0, 3, 3));
        assert_eq!(f.at(5, 0, 2), u.at(5, 0, 2));
        // An interior cell with a flat field: laplacian 0, residual is
        // -λ·exp(u).
        let mut flat = workload::grid3d(6, 1);
        flat.data.iter_mut().for_each(|v| *v = 0.25);
        let rf = ex14_residual(&flat);
        let expected = -EX14_LAMBDA * 0.25f64.exp();
        assert!((rf.at(2, 2, 2) - expected).abs() < 1e-9);
    }

    #[test]
    fn flop_formulas() {
        assert_eq!(flops::atax(10), 400);
        assert_eq!(flops::bicg(10), 400);
        assert_eq!(flops::matvec(10), 200);
        assert_eq!(flops::ex14(4), 12 * 8);
        assert_eq!(flops::ex14(2), 0);
        assert_eq!(flops::ex14(1), 0);
    }
}
