//! Sharded multi-daemon evaluation — one client's sweep fanned out
//! across N `oriole serve` daemons, bit-identical to a local run.
//!
//! The paper's sweeps are embarrassingly parallel across tuning points,
//! so one daemon — even pipelined — is the throughput ceiling. This
//! crate multiplexes a fleet:
//!
//! - [`FleetSpec`] names the daemons (`addr1,addr2,...` or an
//!   `@manifest` file) and owns the **scope partitioner**: every
//!   `(kernel, gpu, sizes, protocol)` scope hashes to a deterministic
//!   *home shard* via the same FNV checksum `persist` uses for tier
//!   file names. Each daemon owns a disjoint `--store-dir`, so the
//!   single-writer-per-scope discipline and torn-write detection from
//!   `persist` hold fleet-wide without coordination.
//! - [`StealScheduler`] is the **work-stealing scheduler**: a sweep's
//!   point-chunks enqueue on the scope's home shard, idle shards steal
//!   from the busiest live queue's tail, and a lost shard's queue
//!   drains to survivors. Pure and deterministic — given the same
//!   sequence of requests it makes the same decisions.
//! - [`FleetEvaluator`] implements [`Oracle`](oriole_tuner::Oracle):
//!   one worker thread per shard executes the schedule through the
//!   fault-hardened [`Client`](oriole_service::Client), chunk results
//!   are positionally verified and merged **in request order**, so the
//!   output is byte-identical regardless of which shard computed what.
//!
//! Why stealing and rebalancing cannot change the answer: evaluation is
//! deterministic, the wire format is bit-exact, and every daemon's
//! store deduplicates points — a chunk computed by shard 2 instead of
//! shard 0 produces the same bits, and a replayed chunk re-serves
//! memoized measurements. Scheduling shows up only in telemetry
//! ([`FleetStats`]), never in the data.

#![warn(missing_docs)]

mod evaluator;
mod sched;
mod spec;

pub use evaluator::{FleetEvaluator, FleetStats, ShardTelemetry};
pub use sched::{StealScheduler, Task};
pub use spec::FleetSpec;
