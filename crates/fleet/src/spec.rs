//! Fleet topology: which daemons form the fleet, and which shard is a
//! scope's deterministic home.

use oriole_service::EvalScope;
use oriole_tuner::persist;
use std::collections::HashSet;

/// The fleet's membership — an ordered, duplicate-free list of daemon
/// addresses. Shard indices are positions in this list, so two clients
/// holding the same spec agree on every partitioning decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    shards: Vec<String>,
}

impl FleetSpec {
    /// Parses the CLI `--fleet` argument: either a comma-separated
    /// address list (`127.0.0.1:7733,127.0.0.1:7734`) or `@path` naming
    /// a manifest file with one address per line (blank lines and
    /// `#`-comments ignored).
    pub fn parse(arg: &str) -> Result<FleetSpec, String> {
        if let Some(path) = arg.strip_prefix('@') {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read fleet manifest `{path}`: {e}"))?;
            let addrs: Vec<String> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect();
            FleetSpec::from_addrs(addrs)
        } else {
            FleetSpec::from_addrs(arg.split(',').map(|s| s.trim().to_string()).collect())
        }
    }

    /// Builds a spec from an explicit address list. Rejects an empty
    /// fleet, empty entries, and duplicates (a daemon listed twice
    /// would silently double its share of every queue).
    pub fn from_addrs(addrs: Vec<String>) -> Result<FleetSpec, String> {
        if addrs.is_empty() {
            return Err("fleet spec names no shards".to_string());
        }
        let mut seen = HashSet::new();
        for a in &addrs {
            if a.is_empty() {
                return Err("fleet spec contains an empty shard address".to_string());
            }
            if !seen.insert(a.as_str()) {
                return Err(format!("fleet spec lists shard `{a}` twice"));
            }
        }
        Ok(FleetSpec { shards: addrs })
    }

    /// The shard addresses, in shard-index order.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Number of shards in the fleet.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the fleet is empty (never true for a parsed spec).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The scope partitioner: a scope's deterministic home shard, by
    /// FNV checksum of the same canonical scope text `persist` embeds
    /// in tier files. Stable across processes and runs, so every
    /// client agrees where a scope's chunks first enqueue — and in the
    /// steady state a scope's warm measurement tier accumulates on one
    /// shard's store, preserving the single-writer-per-scope
    /// discipline fleet-wide. (Stolen or rebalanced chunks land in
    /// *other* daemons' stores — each daemon still only ever writes
    /// its own directory, and dedup makes replays bit-identical.)
    pub fn home_shard(&self, scope: &EvalScope) -> usize {
        let text =
            persist::scope_text(&scope.kernel, &scope.gpu, &scope.sizes, &scope.protocol);
        (persist::checksum(text.as_bytes()) % self.shards.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::Gpu;
    use oriole_tuner::EvalProtocol;

    fn scope(kernel: &str, sizes: &[u64]) -> EvalScope {
        EvalScope {
            kernel: kernel.to_string(),
            gpu: Gpu::K20.spec().clone(),
            sizes: sizes.to_vec(),
            protocol: EvalProtocol::default(),
        }
    }

    #[test]
    fn parses_comma_lists_and_rejects_bad_specs() {
        let spec = FleetSpec::parse("127.0.0.1:1, 127.0.0.1:2 ,127.0.0.1:3").expect("parse");
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.shards()[1], "127.0.0.1:2");

        assert!(FleetSpec::parse("").is_err(), "empty entry");
        assert!(FleetSpec::parse("a,,b").is_err(), "empty middle entry");
        assert!(FleetSpec::parse("a,b,a").is_err(), "duplicate shard");
        assert!(FleetSpec::from_addrs(Vec::new()).is_err(), "empty fleet");
    }

    #[test]
    fn parses_manifest_files_with_comments() {
        let dir = std::env::temp_dir().join(format!("oriole-fleet-spec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("fleet.txt");
        std::fs::write(&path, "# the fleet\n127.0.0.1:7733\n\n  127.0.0.1:7734\n").expect("write");
        let spec = FleetSpec::parse(&format!("@{}", path.display())).expect("parse manifest");
        assert_eq!(spec.shards(), ["127.0.0.1:7733", "127.0.0.1:7734"]);
        assert!(FleetSpec::parse("@/no/such/manifest").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn home_shard_is_deterministic_in_range_and_scope_sensitive() {
        let spec = FleetSpec::parse("a,b,c,d").expect("parse");
        let s1 = scope("atax", &[64]);
        let h1 = spec.home_shard(&s1);
        assert!(h1 < spec.len());
        assert_eq!(h1, spec.home_shard(&s1), "same scope, same home");
        // Different scopes spread: across a handful of kernels/sizes at
        // least two distinct homes must appear (FNV over distinct texts).
        let homes: HashSet<usize> = ["atax", "bicg", "mvt", "gesummv"]
            .iter()
            .flat_map(|k| [32u64, 64, 128].iter().map(|n| spec.home_shard(&scope(k, &[*n]))))
            .collect();
        assert!(homes.len() > 1, "partitioner collapsed every scope onto one shard");
    }
}
