//! The fleet Oracle: one worker thread per shard executing the
//! work-stealing schedule through the fault-hardened service client,
//! results merged positionally so the output is byte-identical to a
//! local run regardless of who computed what.

use crate::sched::StealScheduler;
use crate::spec::FleetSpec;
use oriole_codegen::TuningParams;
use oriole_service::{Client, EvalScope, RetryPolicy, ServiceError};
use oriole_tuner::{FleetCounters, Measurement, Oracle};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What one shard did during a fleet run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardTelemetry {
    /// The daemon's address.
    pub addr: String,
    /// Chunks initially enqueued on this shard (it was the scope's
    /// home, or inherited a dead home's dispatch).
    pub dispatched: u64,
    /// Chunks this shard's worker completed.
    pub completed: u64,
    /// Chunks this shard took from another shard's queue tail.
    pub stolen: u64,
    /// Chunks drained off this shard when it was declared lost.
    pub rebalanced_away: u64,
    /// Whether the shard was declared lost (its client exhausted the
    /// retry policy on a transient failure).
    pub lost: bool,
    /// Wall-clock this shard's worker spent inside `evaluate` RPCs —
    /// the per-shard latency aggregate.
    pub eval_time: Duration,
}

/// Fleet-level telemetry: per-shard counters plus run totals. Collapse
/// to the [`EvalStats`](oriole_tuner::EvalStats)-embeddable form with
/// [`FleetStats::counters`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// One entry per shard, in [`FleetSpec`] order.
    pub shards: Vec<ShardTelemetry>,
    /// Point-chunks scheduled across all batches.
    pub chunks: u64,
    /// Distinct points fetched over the wire (client-side misses).
    pub points_fetched: u64,
    /// Points the daemons computed fresh (0 on fully warm stores).
    pub computed_remote: u64,
}

impl FleetStats {
    /// The compact counter form threaded through `EvalStats.fleet`.
    pub fn counters(&self) -> FleetCounters {
        FleetCounters {
            shards: self.shards.len() as u64,
            batches_dispatched: self.chunks,
            batches_stolen: self.shards.iter().map(|s| s.stolen).sum(),
            batches_rebalanced: self.shards.iter().map(|s| s.rebalanced_away).sum(),
            shards_lost: self.shards.iter().filter(|s| s.lost).count() as u64,
        }
    }
}

/// Shared per-batch scheduling state, updated under one lock by every
/// worker.
struct BatchState {
    sched: StealScheduler,
    /// Chunk results by chunk index — the merge key that makes output
    /// order independent of the steal schedule.
    results: Vec<Option<(u64, Vec<Measurement>)>>,
    resolved: usize,
    /// A deterministic failure (or total fleet loss), fatal to the
    /// whole batch: every shard would answer a deterministic error the
    /// same way, so rebalancing cannot help.
    failed: Option<String>,
}

/// A fleet [`Oracle`]: evaluates one experiment scope across N `oriole
/// serve` daemons, each owning a disjoint store directory.
///
/// A batch's cache misses are chunked, enqueued on the scope's home
/// shard ([`FleetSpec::home_shard`]), and executed by one worker per
/// shard: idle workers steal from the busiest queue's tail, and a
/// worker whose client exhausts its retry policy retires its shard —
/// the queue (and the chunk it was holding) rebalances onto survivors.
/// Each chunk rides the fault-hardened [`Client`] (internal retries,
/// positional verification), and results merge **by chunk index**, so
/// the answer is bit-identical to a local run no matter which shard
/// computed what — scheduling shows up only in [`FleetStats`].
///
/// Like [`RemoteEvaluator`](oriole_service::RemoteEvaluator), the
/// oracle contract has no error channel, so a batch-fatal failure is
/// **latched**: the batch scores `f64::INFINITY`, every later query
/// short-circuits, and drivers must check [`FleetEvaluator::take_error`]
/// after the search. A shard lost mid-run is *not* fatal while any
/// shard survives — that is the point of the fleet.
pub struct FleetEvaluator {
    spec: FleetSpec,
    scope: EvalScope,
    policy: RetryPolicy,
    chunk_points: usize,
    cache: Mutex<HashMap<TuningParams, Measurement>>,
    /// Shards declared lost in earlier batches stay lost for the run
    /// (their daemons exhausted a whole retry policy; re-probing them
    /// every batch would stall each one on the same timeouts).
    lost: Mutex<Vec<bool>>,
    telemetry: Mutex<FleetStats>,
    error: Mutex<Option<String>>,
    poisoned: AtomicBool,
}

impl FleetEvaluator {
    /// A fleet evaluator over `scope` with the default [`RetryPolicy`]
    /// and chunk size (64 points — the service tier's batch sweet
    /// spot).
    pub fn new(spec: FleetSpec, scope: EvalScope) -> FleetEvaluator {
        FleetEvaluator::with_policy(spec, scope, RetryPolicy::default(), 64)
    }

    /// [`FleetEvaluator::new`] with explicit retry policy and points
    /// per chunk (the work-stealing granule; clamped to ≥ 1).
    pub fn with_policy(
        spec: FleetSpec,
        scope: EvalScope,
        policy: RetryPolicy,
        chunk_points: usize,
    ) -> FleetEvaluator {
        let n = spec.len();
        let telemetry = FleetStats {
            shards: spec
                .shards()
                .iter()
                .map(|a| ShardTelemetry { addr: a.clone(), ..ShardTelemetry::default() })
                .collect(),
            ..FleetStats::default()
        };
        FleetEvaluator {
            spec,
            scope,
            policy,
            chunk_points: chunk_points.max(1),
            cache: Mutex::new(HashMap::new()),
            lost: Mutex::new(vec![false; n]),
            telemetry: Mutex::new(telemetry),
            error: Mutex::new(None),
            poisoned: AtomicBool::new(false),
        }
    }

    /// The fleet membership.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The experiment scope every query runs under.
    pub fn scope(&self) -> &EvalScope {
        &self.scope
    }

    /// A snapshot of the fleet telemetry so far.
    pub fn stats(&self) -> FleetStats {
        self.telemetry.lock().expect("telemetry lock").clone()
    }

    /// The latched batch-fatal failure, if any — same contract as
    /// [`RemoteEvaluator::take_error`](oriole_service::RemoteEvaluator::take_error):
    /// drivers must check after a search and treat `Some` as an
    /// aborted run; taking the message does not revive the evaluator.
    pub fn take_error(&self) -> Option<String> {
        self.error.lock().expect("error lock").take()
    }

    fn latch_error(&self, message: String) {
        self.poisoned.store(true, Ordering::SeqCst);
        let mut slot = self.error.lock().expect("error lock");
        if slot.is_none() {
            *slot = Some(message);
        }
    }

    /// Evaluates one point (memoized client-side). `None` after a
    /// latched fleet failure.
    pub fn evaluate(&self, params: TuningParams) -> Option<Measurement> {
        self.evaluate_batch(&[params]).map(|mut v| v.remove(0))
    }

    /// Evaluates a batch across the fleet: misses are chunked and
    /// scheduled work-stealingly, results return in input order,
    /// bit-identical to local evaluation. `None` on a latched fleet
    /// failure (deterministic daemon error, or every shard lost).
    pub fn evaluate_batch(&self, points: &[TuningParams]) -> Option<Vec<Measurement>> {
        if self.poisoned.load(Ordering::SeqCst) {
            return None;
        }
        let misses: Vec<TuningParams> = {
            let cache = self.cache.lock().expect("fleet cache lock");
            let mut seen = std::collections::HashSet::new();
            points
                .iter()
                .filter(|p| !cache.contains_key(p) && seen.insert(**p))
                .copied()
                .collect()
        };
        if !misses.is_empty() && !self.fetch(&misses) {
            return None;
        }
        let cache = self.cache.lock().expect("fleet cache lock");
        Some(points.iter().map(|p| cache[p].clone()).collect())
    }

    /// Schedules and executes one batch of misses. Returns false when
    /// the batch failed (error latched).
    fn fetch(&self, misses: &[TuningParams]) -> bool {
        let chunks: Vec<&[TuningParams]> = misses.chunks(self.chunk_points).collect();
        let n = self.spec.len();
        let home = self.spec.home_shard(&self.scope);

        let mut sched = StealScheduler::new(n);
        for (shard, was_lost) in self.lost.lock().expect("lost lock").iter().enumerate() {
            if *was_lost {
                sched.retire(shard, None);
            }
        }
        if sched.live_count() == 0 {
            self.latch_error(format!("all {n} fleet shards are lost"));
            return false;
        }
        for c in 0..chunks.len() {
            sched.enqueue(home, c);
        }
        {
            let mut t = self.telemetry.lock().expect("telemetry lock");
            t.chunks += chunks.len() as u64;
            // Dispatch lands on the home shard, or its live successor
            // when the home is already lost — mirror enqueue's rule.
            let target = (0..n).map(|off| (home + off) % n).find(|&s| sched.is_live(s));
            if let Some(s) = target {
                t.shards[s].dispatched += chunks.len() as u64;
            }
        }

        let state = Mutex::new(BatchState {
            sched,
            results: vec![None; chunks.len()],
            resolved: 0,
            failed: None,
        });
        let woke = Condvar::new();
        std::thread::scope(|s| {
            for shard in 0..n {
                let state = &state;
                let woke = &woke;
                let chunks = &chunks;
                s.spawn(move || self.worker(shard, chunks, state, woke));
            }
        });

        let st = state.into_inner().expect("batch state lock");
        if let Some(msg) = st.failed {
            self.latch_error(msg);
            return false;
        }
        debug_assert_eq!(st.resolved, chunks.len());
        let mut computed_total = 0u64;
        {
            let mut cache = self.cache.lock().expect("fleet cache lock");
            // Merge in chunk-index order: positional, schedule-blind.
            for r in st.results {
                let (computed, ms) = r.expect("no failure means every chunk resolved");
                computed_total += computed;
                for m in ms {
                    cache.insert(m.params, m);
                }
            }
        }
        let mut t = self.telemetry.lock().expect("telemetry lock");
        t.points_fetched += misses.len() as u64;
        t.computed_remote += computed_total;
        true
    }

    /// One shard's worker: drains the schedule through a lazily-dialed
    /// persistent [`Client`] until the batch resolves, the shard is
    /// retired, or the batch fails.
    fn worker(
        &self,
        shard: usize,
        chunks: &[&[TuningParams]],
        state: &Mutex<BatchState>,
        woke: &Condvar,
    ) {
        let mut client: Option<Client> = None;
        loop {
            let task = {
                let mut st = state.lock().expect("batch state lock");
                loop {
                    if st.failed.is_some() || st.resolved == chunks.len() {
                        return;
                    }
                    if !st.sched.is_live(shard) {
                        return;
                    }
                    match st.sched.next_for(shard) {
                        Some(t) => break t,
                        None => {
                            // Idle but the batch is unresolved: work may
                            // still rebalance onto this queue if another
                            // shard dies. The timeout only guards a
                            // missed wakeup.
                            let (guard, _) = woke
                                .wait_timeout(st, Duration::from_millis(20))
                                .expect("batch state wait");
                            st = guard;
                        }
                    }
                }
            };
            if task.stolen_from.is_some() {
                self.telemetry.lock().expect("telemetry lock").shards[shard].stolen += 1;
            }
            let started = Instant::now();
            let outcome = (|| -> Result<(u64, Vec<Measurement>), ServiceError> {
                if client.is_none() {
                    client =
                        Some(Client::connect_with(&self.spec.shards()[shard], self.policy)?);
                }
                let c = client.as_ref().expect("client just ensured");
                // Client::evaluate retries transient failures per the
                // policy and verifies the positional contract — by the
                // time an error reaches us, the policy is exhausted.
                c.evaluate(&self.scope, chunks[task.chunk])
            })();
            match outcome {
                Ok((computed, measurements)) => {
                    {
                        let mut t = self.telemetry.lock().expect("telemetry lock");
                        t.shards[shard].completed += 1;
                        t.shards[shard].eval_time += started.elapsed();
                    }
                    let mut st = state.lock().expect("batch state lock");
                    st.results[task.chunk] = Some((computed, measurements));
                    st.resolved += 1;
                    woke.notify_all();
                }
                Err(e) if e.is_transient() => {
                    // The shard is slow-to-dead past a whole retry
                    // policy: retire it and rebalance its queue (and
                    // the chunk in hand) onto survivors. Dedup makes
                    // any replays bit-identical.
                    self.lost.lock().expect("lost lock")[shard] = true;
                    let mut st = state.lock().expect("batch state lock");
                    let moved = st.sched.retire(shard, Some(task.chunk));
                    if st.sched.live_count() == 0 && st.failed.is_none() {
                        st.failed = Some(format!(
                            "all {} fleet shards lost; last shard `{}` failed with: {e}",
                            self.spec.len(),
                            self.spec.shards()[shard]
                        ));
                    }
                    drop(st);
                    {
                        let mut t = self.telemetry.lock().expect("telemetry lock");
                        t.shards[shard].lost = true;
                        t.shards[shard].rebalanced_away += moved as u64;
                    }
                    woke.notify_all();
                    return;
                }
                Err(e) => {
                    // Deterministic (unknown kernel, protocol skew):
                    // every shard would answer the same way — abort the
                    // batch instead of replaying the error N times.
                    let mut st = state.lock().expect("batch state lock");
                    if st.failed.is_none() {
                        st.failed =
                            Some(format!("shard `{}`: {e}", self.spec.shards()[shard]));
                    }
                    drop(st);
                    woke.notify_all();
                    return;
                }
            }
        }
    }
}

impl Oracle for FleetEvaluator {
    fn eval(&self, params: TuningParams) -> f64 {
        self.evaluate(params).map_or(f64::INFINITY, |m| m.time_ms)
    }

    fn eval_many(&self, points: &[TuningParams]) -> Vec<f64> {
        match self.evaluate_batch(points) {
            Some(ms) => ms.into_iter().map(|m| m.time_ms).collect(),
            None => vec![f64::INFINITY; points.len()],
        }
    }
}

impl std::fmt::Debug for FleetEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetEvaluator")
            .field("shards", &self.spec.shards())
            .field("kernel", &self.scope.kernel)
            .field("chunk_points", &self.chunk_points)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oriole_arch::{Gpu, GpuSpec};
    use oriole_kernels::KernelId;
    use oriole_service::{ServeSummary, Server};
    use oriole_tuner::{ArtifactStore, EvalProtocol, Evaluator, SearchSpace};
    use std::thread::JoinHandle;

    fn spawn_server() -> (String, JoinHandle<ServeSummary>) {
        let server = Server::bind("127.0.0.1:0", ArtifactStore::new()).expect("bind");
        let addr = server.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || server.run().expect("serve"));
        (addr, handle)
    }

    fn scope(kernel: &str, gpu: &GpuSpec, sizes: &[u64]) -> EvalScope {
        EvalScope {
            kernel: kernel.to_string(),
            gpu: gpu.clone(),
            sizes: sizes.to_vec(),
            protocol: EvalProtocol::default(),
        }
    }

    fn local_sweep(kid: KernelId, gpu: &GpuSpec, sizes: &[u64]) -> Vec<Measurement> {
        let space = SearchSpace::tiny();
        let builder = move |n: u64| kid.ast(n);
        let ev = Evaluator::new(&builder, gpu, sizes);
        ev.evaluate_space(&space).iter().map(|m| (**m).clone()).collect()
    }

    /// An address that refuses connections: bind, snapshot, drop.
    fn dead_addr() -> String {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    }

    /// A policy that declares a shard dead quickly, so dead-shard tests
    /// stay fast.
    fn impatient() -> RetryPolicy {
        RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(10),
            rpc_timeout: Duration::from_secs(5),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn fleet_sweep_is_bit_identical_to_local_and_steals_across_shards() {
        let gpu = Gpu::K20.spec();
        let sizes = [64u64];
        let local = local_sweep(KernelId::Atax, gpu, &sizes);
        let points: Vec<TuningParams> = SearchSpace::tiny().iter().collect();

        let (a0, h0) = spawn_server();
        let (a1, h1) = spawn_server();
        let spec = FleetSpec::from_addrs(vec![a0.clone(), a1.clone()]).expect("spec");
        // Chunk small so there are many granules to steal.
        let fleet =
            FleetEvaluator::with_policy(spec, scope("atax", gpu, &sizes), impatient(), 2);

        let times = fleet.eval_many(&points);
        assert_eq!(times.len(), local.len());
        for (t, l) in times.iter().zip(&local) {
            assert_eq!(t.to_bits(), l.time_ms.to_bits(), "fleet diverged from local");
        }
        // Warm re-run: served from the client-side memo, same bits.
        assert_eq!(fleet.eval_many(&points), times);
        assert!(fleet.take_error().is_none());

        let stats = fleet.stats();
        let counters = stats.counters();
        assert_eq!(counters.shards, 2);
        assert_eq!(counters.shards_lost, 0);
        let completed: u64 = stats.shards.iter().map(|s| s.completed).sum();
        assert_eq!(completed, stats.chunks, "every chunk completed exactly once");
        assert!(
            stats.shards.iter().all(|s| s.completed > 0),
            "both shards must participate (stealing works): {stats:?}"
        );
        assert!(counters.batches_stolen > 0, "non-home shard only gets work by stealing");

        for addr in [a0, a1] {
            Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
        }
        h0.join().expect("server 0");
        h1.join().expect("server 1");
    }

    #[test]
    fn dead_home_shard_rebalances_and_the_answer_is_still_bit_identical() {
        let gpu = Gpu::M40.spec();
        let sizes = [32u64];
        let local = local_sweep(KernelId::Bicg, gpu, &sizes);
        let points: Vec<TuningParams> = SearchSpace::tiny().iter().collect();
        let sc = scope("bicg", gpu, &sizes);

        let (live, handle) = spawn_server();
        // Place the dead address at the scope's home index, so the
        // dispatch queue itself must rebalance (the harder path).
        let probe = FleetSpec::from_addrs(vec!["a".into(), "b".into()]).expect("probe");
        let home = probe.home_shard(&sc);
        let mut addrs = vec![String::new(), String::new()];
        addrs[home] = dead_addr();
        addrs[1 - home] = live.clone();
        let spec = FleetSpec::from_addrs(addrs).expect("spec");
        let fleet = FleetEvaluator::with_policy(spec, sc, impatient(), 2);

        let times = fleet.eval_many(&points);
        for (t, l) in times.iter().zip(&local) {
            assert_eq!(t.to_bits(), l.time_ms.to_bits(), "rebalanced fleet diverged");
        }
        assert!(fleet.take_error().is_none(), "one survivor means no fleet failure");

        let stats = fleet.stats();
        assert!(stats.shards[home].lost, "dead home must be declared lost");
        assert!(
            stats.shards[home].rebalanced_away > 0,
            "the home queue must have drained to the survivor: {stats:?}"
        );
        assert_eq!(stats.counters().shards_lost, 1);

        Client::connect(&live).expect("connect").shutdown().expect("shutdown");
        handle.join().expect("server");
    }

    #[test]
    fn every_shard_dead_latches_a_fleet_failure() {
        let spec =
            FleetSpec::from_addrs(vec![dead_addr(), dead_addr()]).expect("spec");
        let gpu = Gpu::K20.spec();
        let fleet = FleetEvaluator::with_policy(
            spec,
            scope("atax", gpu, &[64]),
            RetryPolicy {
                max_retries: 0,
                base_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
            4,
        );
        let points: Vec<TuningParams> = SearchSpace::tiny().iter().take(3).collect();
        assert_eq!(fleet.eval_many(&points), vec![f64::INFINITY; 3]);
        let err = fleet.take_error().expect("total loss must latch");
        assert!(err.contains("lost"), "error should say the fleet is lost: {err}");
        // Latched: later queries short-circuit to infinity.
        assert_eq!(fleet.eval(points[0]), f64::INFINITY);
    }

    #[test]
    fn deterministic_daemon_errors_abort_instead_of_rebalancing() {
        let (a0, h0) = spawn_server();
        let (a1, h1) = spawn_server();
        let gpu = Gpu::K20.spec();
        let spec = FleetSpec::from_addrs(vec![a0.clone(), a1.clone()]).expect("spec");
        let fleet = FleetEvaluator::with_policy(
            spec,
            scope("no-such-kernel", gpu, &[64]),
            impatient(),
            2,
        );
        let points: Vec<TuningParams> = SearchSpace::tiny().iter().take(4).collect();
        assert_eq!(fleet.eval_many(&points), vec![f64::INFINITY; 4]);
        let err = fleet.take_error().expect("unknown kernel must latch");
        assert!(err.contains("no-such-kernel"), "error should carry the cause: {err}");
        let stats = fleet.stats();
        assert_eq!(
            stats.counters().shards_lost,
            0,
            "a deterministic error must not retire shards: {stats:?}"
        );

        for addr in [a0, a1] {
            Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
        }
        h0.join().expect("server 0");
        h1.join().expect("server 1");
    }
}
