//! The work-stealing chunk scheduler — pure state machine, no I/O, no
//! clocks, no randomness. Workers drive it under one lock; given the
//! same request sequence it makes the same decisions, which is what
//! the deterministic-seed tests below exploit.
//!
//! Chunks are identified by their index in the batch's chunk list.
//! Because the fleet merges results **by chunk index**, any execution
//! order the scheduler produces yields byte-identical output — the
//! tests prove merge-order independence over randomized steal
//! schedules.

use std::collections::VecDeque;

/// One scheduling decision handed to a shard's worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Index of the chunk to evaluate.
    pub chunk: usize,
    /// The shard whose queue this chunk was stolen from (`None` when
    /// it came off the requesting shard's own queue).
    pub stolen_from: Option<usize>,
}

/// Per-shard deques of point-chunk indices with stealing and
/// lost-shard rebalancing.
///
/// Discipline: a shard pops its **own queue's front** first (FIFO —
/// oldest home work first); an idle shard steals from the **tail** of
/// the longest live queue (lowest index breaking ties), taking the
/// work its owner would reach last. A retired shard's queue drains
/// round-robin onto survivors' tails.
#[derive(Debug)]
pub struct StealScheduler {
    queues: Vec<VecDeque<usize>>,
    live: Vec<bool>,
}

impl StealScheduler {
    /// A scheduler over `n` shards, all live, all queues empty.
    pub fn new(n: usize) -> StealScheduler {
        StealScheduler { queues: vec![VecDeque::new(); n], live: vec![true; n] }
    }

    /// Enqueues `chunk` on `shard`'s queue — or, if that shard is
    /// already retired, on the next live shard cyclically after it
    /// (deterministic, so a dead home shard never strands work).
    /// Panics if no shard is live.
    pub fn enqueue(&mut self, shard: usize, chunk: usize) {
        let n = self.queues.len();
        let target = (0..n)
            .map(|off| (shard + off) % n)
            .find(|&s| self.live[s])
            .expect("enqueue on a fleet with no live shard");
        self.queues[target].push_back(chunk);
    }

    /// The next task for `shard`: its own queue's front, else a steal
    /// from the tail of the longest live queue. `None` when the shard
    /// is retired or no queued work exists anywhere.
    pub fn next_for(&mut self, shard: usize) -> Option<Task> {
        if !self.live.get(shard).copied().unwrap_or(false) {
            return None;
        }
        if let Some(chunk) = self.queues[shard].pop_front() {
            return Some(Task { chunk, stolen_from: None });
        }
        let victim = (0..self.queues.len())
            .filter(|&s| s != shard && self.live[s] && !self.queues[s].is_empty())
            .max_by_key(|&s| (self.queues[s].len(), usize::MAX - s))?;
        let chunk = self.queues[victim].pop_back().expect("victim queue checked non-empty");
        Some(Task { chunk, stolen_from: Some(victim) })
    }

    /// Retires `shard` (lost or failed) and rebalances: its queued
    /// chunks — plus `in_hand`, the chunk its worker was holding when
    /// it died — drain round-robin onto the survivors' tails. Returns
    /// how many chunks moved. With no survivors the chunks are dropped
    /// and 0 is returned; the caller must then fail the batch.
    pub fn retire(&mut self, shard: usize, in_hand: Option<usize>) -> usize {
        if !self.live.get(shard).copied().unwrap_or(false) {
            // Already retired: only the in-hand chunk can need a home.
            if let Some(chunk) = in_hand {
                if self.live.iter().any(|&l| l) {
                    self.enqueue(shard, chunk);
                    return 1;
                }
            }
            return 0;
        }
        self.live[shard] = false;
        let mut orphans: Vec<usize> = self.queues[shard].drain(..).collect();
        orphans.extend(in_hand);
        let survivors: Vec<usize> = (0..self.queues.len()).filter(|&s| self.live[s]).collect();
        if survivors.is_empty() {
            return 0;
        }
        let moved = orphans.len();
        for (i, chunk) in orphans.into_iter().enumerate() {
            self.queues[survivors[i % survivors.len()]].push_back(chunk);
        }
        moved
    }

    /// Whether `shard` is still live.
    pub fn is_live(&self, shard: usize) -> bool {
        self.live.get(shard).copied().unwrap_or(false)
    }

    /// Live shards remaining.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Chunks still queued (not yet handed to any worker).
    pub fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    /// xorshift64* — the repo's stock deterministic test RNG.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545f4914f6cdd1d)
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Drives a randomized steal schedule: each step a random live
    /// shard asks for work and "completes" it instantly; with
    /// `kill_at`, one random shard is retired mid-run. Returns the
    /// chunk→shard assignment and the merged output (results indexed
    /// by chunk id, exactly how `FleetEvaluator` merges).
    fn run_schedule(
        seed: u64,
        n_shards: usize,
        n_chunks: usize,
        home: usize,
        kill_at: Option<usize>,
    ) -> (HashMap<usize, usize>, Vec<usize>) {
        let mut rng = Rng(seed | 1);
        let mut sched = StealScheduler::new(n_shards);
        for c in 0..n_chunks {
            sched.enqueue(home, c);
        }
        let mut assignment = HashMap::new();
        let mut results: Vec<Option<usize>> = vec![None; n_chunks];
        let mut done = 0;
        let mut steps = 0;
        let mut killed = false;
        while done < n_chunks {
            steps += 1;
            assert!(steps < 100_000, "schedule failed to converge");
            if !killed && Some(done) == kill_at && sched.live_count() > 1 {
                killed = true;
                // Kill a random live shard that still has queued work
                // if possible, else any live one.
                let victim = (0..n_shards)
                    .filter(|&s| sched.is_live(s))
                    .max_by_key(|&s| (sched.queues[s].len(), usize::MAX - s))
                    .expect("a live shard exists");
                sched.retire(victim, None);
            }
            let shard = rng.below(n_shards);
            if let Some(task) = sched.next_for(shard) {
                assert!(
                    assignment.insert(task.chunk, shard).is_none(),
                    "chunk {} scheduled twice",
                    task.chunk
                );
                // The "result" of evaluating a chunk is a pure function
                // of the chunk — merge is by chunk id, positionally.
                results[task.chunk] = Some(task.chunk * 31 + 7);
                done += 1;
            }
        }
        let merged = results.into_iter().map(|r| r.expect("all chunks resolved")).collect();
        (assignment, merged)
    }

    #[test]
    fn merge_order_is_independent_of_steal_schedule() {
        let canonical: Vec<usize> = (0..24).map(|c| c * 31 + 7).collect();
        let mut distinct_assignments = HashSet::new();
        for seed in [3, 17, 0x6f72696f, 9999, 123456789] {
            let (assignment, merged) = run_schedule(seed, 4, 24, 1, None);
            assert_eq!(merged, canonical, "seed {seed}: merged output depends on schedule");
            assert_eq!(assignment.len(), 24, "every chunk scheduled exactly once");
            let mut key: Vec<(usize, usize)> = assignment.into_iter().collect();
            key.sort_unstable();
            distinct_assignments.insert(key);
        }
        // Non-vacuous: the seeds actually produced different schedules.
        assert!(
            distinct_assignments.len() >= 2,
            "every seed produced the same schedule — the test proves nothing"
        );
    }

    #[test]
    fn killing_a_shard_mid_schedule_loses_and_duplicates_nothing() {
        let canonical: Vec<usize> = (0..30).map(|c| c * 31 + 7).collect();
        for seed in [1, 42, 777] {
            let (assignment, merged) = run_schedule(seed, 3, 30, 0, Some(5));
            assert_eq!(merged, canonical, "seed {seed}: rebalance changed the output");
            assert_eq!(assignment.len(), 30);
        }
    }

    #[test]
    fn own_queue_is_fifo_and_steals_come_from_the_busiest_tail() {
        let mut s = StealScheduler::new(3);
        for c in 0..4 {
            s.enqueue(0, c);
        }
        s.enqueue(1, 10);
        // Shard 0 drains its own queue front-first.
        assert_eq!(s.next_for(0), Some(Task { chunk: 0, stolen_from: None }));
        // Shard 2 is idle: steals from shard 0 (longest queue), tail end.
        assert_eq!(s.next_for(2), Some(Task { chunk: 3, stolen_from: Some(0) }));
        // Shard 0 still holds [1,2] vs shard 1's [10]: still the busiest.
        assert_eq!(s.next_for(2), Some(Task { chunk: 2, stolen_from: Some(0) }));
        // Tie at one each: lowest index wins.
        assert_eq!(s.next_for(2), Some(Task { chunk: 1, stolen_from: Some(0) }));
        assert_eq!(s.next_for(2), Some(Task { chunk: 10, stolen_from: Some(1) }));
        assert_eq!(s.next_for(2), None);
    }

    #[test]
    fn retire_drains_to_survivors_and_requeues_the_in_hand_chunk() {
        let mut s = StealScheduler::new(3);
        for c in 0..5 {
            s.enqueue(1, c);
        }
        let held = s.next_for(1).expect("work queued").chunk;
        assert_eq!(held, 0);
        let moved = s.retire(1, Some(held));
        assert_eq!(moved, 5, "4 queued + 1 in hand");
        assert_eq!(s.live_count(), 2);
        assert_eq!(s.queued(), 5);
        assert!(s.next_for(1).is_none(), "retired shards get no work");
        // Everything is still reachable from the survivors.
        let mut seen = HashSet::new();
        while let Some(t) = s.next_for(0).or_else(|| s.next_for(2)) {
            seen.insert(t.chunk);
        }
        assert_eq!(seen, HashSet::from([0, 1, 2, 3, 4]));
    }

    #[test]
    fn enqueue_skips_dead_shards_and_last_survivor_failure_drops_work() {
        let mut s = StealScheduler::new(2);
        s.retire(0, None);
        s.enqueue(0, 9); // home is dead: lands on shard 1
        assert_eq!(s.next_for(1), Some(Task { chunk: 9, stolen_from: None }));
        s.enqueue(1, 11);
        assert_eq!(s.retire(1, Some(12)), 0, "no survivors: dropped, caller must fail");
        assert_eq!(s.live_count(), 0);
        assert_eq!(s.queued(), 0);
    }
}
