//! Fault-injection acceptance for the fleet: a shard that turns into a
//! network black hole must be detected within the client's deadline
//! budget, retired, and its chunks rerouted to the survivors — with
//! the final answer bit-identical to a local run and **no point lost
//! or duplicated beyond the rebalanced chunks**. A shard whose fault
//! heals inside the retry policy must stay in the fleet.

use oriole_arch::{Gpu, GpuSpec};
use oriole_codegen::TuningParams;
use oriole_fleet::{FleetEvaluator, FleetSpec};
use oriole_kernels::KernelId;
use oriole_service::{
    ChaosPlan, ChaosProxy, Client, EvalScope, FaultSpec, RetryPolicy, ServeSummary, Server,
};
use oriole_tuner::{ArtifactStore, EvalProtocol, Evaluator, Measurement, Oracle, SearchSpace};
use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn spawn_server() -> (SocketAddr, JoinHandle<ServeSummary>) {
    let server = Server::bind("127.0.0.1:0", ArtifactStore::new()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

fn scope(kernel: &str, gpu: &GpuSpec, sizes: &[u64]) -> EvalScope {
    EvalScope {
        kernel: kernel.to_string(),
        gpu: gpu.clone(),
        sizes: sizes.to_vec(),
        protocol: EvalProtocol::default(),
    }
}

fn local_sweep(kid: KernelId, gpu: &GpuSpec, sizes: &[u64]) -> Vec<Measurement> {
    let space = SearchSpace::tiny();
    let builder = move |n: u64| kid.ast(n);
    let ev = Evaluator::new(&builder, gpu, sizes);
    ev.evaluate_space(&space).iter().map(|m| (**m).clone()).collect()
}

fn shutdown_daemon(addr: SocketAddr, handle: JoinHandle<ServeSummary>) -> ServeSummary {
    Client::connect(&addr.to_string()).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("server thread")
}

/// Deadlines tight enough that the black hole is detected in under a
/// second, not after the default ten-second RPC timeout.
fn impatient() -> RetryPolicy {
    RetryPolicy {
        max_retries: 1,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        rpc_timeout: Duration::from_millis(400),
        jitter_seed: 42,
    }
}

/// Builds a two-shard spec with `faulty` placed at the scope's home
/// index — the harder path, where the dispatch queue itself must
/// reroute — and returns `(spec, home_index)`.
fn spec_with_faulty_home(sc: &EvalScope, faulty: String, healthy: String) -> (FleetSpec, usize) {
    let probe = FleetSpec::from_addrs(vec!["a".into(), "b".into()]).expect("probe");
    let home = probe.home_shard(sc);
    let mut addrs = vec![String::new(), String::new()];
    addrs[home] = faulty;
    addrs[1 - home] = healthy;
    (FleetSpec::from_addrs(addrs).expect("spec"), home)
}

#[test]
fn black_holed_home_shard_reroutes_without_losing_or_duplicating_points() {
    const CHUNK: usize = 2;
    let gpu = Gpu::K20.spec();
    let sizes = [64u64];
    let local = local_sweep(KernelId::Atax, gpu, &sizes);
    let points: Vec<TuningParams> = SearchSpace::tiny().iter().collect();
    let sc = scope("atax", gpu, &sizes);

    let (hole_daemon, hole_handle) = spawn_server();
    let (live_daemon, live_handle) = spawn_server();
    // The black hole forwards requests upstream but swallows every
    // response: the daemon behind it may still compute, which is
    // exactly why the unique-evaluation bound below has a slack term.
    let proxy = ChaosProxy::spawn(
        hole_daemon,
        ChaosPlan::always(FaultSpec { delay_response_ms: 60_000, ..FaultSpec::clean() }),
    )
    .expect("proxy");

    let (spec, home) =
        spec_with_faulty_home(&sc, proxy.addr().to_string(), live_daemon.to_string());
    let fleet = FleetEvaluator::with_policy(spec, sc, impatient(), CHUNK);

    let started = Instant::now();
    let times = fleet.eval_many(&points);
    let elapsed = started.elapsed();
    // Detection budget: one in-flight RPC through the whole impatient
    // policy, plus the survivor's sweep — nowhere near the 60 s hole.
    assert!(elapsed < Duration::from_secs(20), "reroute took {elapsed:?}: deadline not honored");

    assert_eq!(times.len(), local.len());
    for (t, l) in times.iter().zip(&local) {
        assert_eq!(t.to_bits(), l.time_ms.to_bits(), "rerouted fleet diverged from local");
    }
    assert!(fleet.take_error().is_none(), "one healthy shard means no fleet failure");

    let stats = fleet.stats();
    assert!(stats.shards[home].lost, "the black-holed home must be declared lost: {stats:?}");
    assert!(stats.shards[home].rebalanced_away > 0, "its queue must have drained: {stats:?}");
    let completed: u64 = stats.shards.iter().map(|s| s.completed).sum();
    assert_eq!(completed, stats.chunks, "every chunk completed exactly once: {stats:?}");

    // No point lost, none duplicated beyond the rebalanced chunks: the
    // daemons' combined unique-evaluation count covers the space at
    // least once, with slack only for chunks the black-holed daemon
    // computed before its responses were swallowed.
    proxy.stop();
    let hole_stats =
        Client::connect(&hole_daemon.to_string()).expect("connect").stats().expect("stats");
    let live_stats =
        Client::connect(&live_daemon.to_string()).expect("connect").stats().expect("stats");
    let unique = hole_stats.unique_evaluations + live_stats.unique_evaluations;
    let space = points.len() as u64;
    let rebalanced_slack = stats.shards[home].rebalanced_away * CHUNK as u64;
    assert!(
        unique >= space,
        "points lost: {unique} unique evaluations < {space} points"
    );
    assert!(
        unique <= space + rebalanced_slack,
        "points duplicated beyond the {rebalanced_slack}-point rebalance slack: \
         {unique} unique evaluations for {space} points"
    );

    shutdown_daemon(hole_daemon, hole_handle);
    shutdown_daemon(live_daemon, live_handle);
}

#[test]
fn a_fault_that_heals_within_the_retry_policy_keeps_the_shard_in_the_fleet() {
    let gpu = Gpu::M40.spec();
    let sizes = [32u64];
    let local = local_sweep(KernelId::Bicg, gpu, &sizes);
    let points: Vec<TuningParams> = SearchSpace::tiny().iter().collect();
    let sc = scope("bicg", gpu, &sizes);

    let (flaky_daemon, flaky_handle) = spawn_server();
    let (live_daemon, live_handle) = spawn_server();
    // First connection through the proxy dies mid-response-frame; every
    // later one forwards faithfully. The client's internal retry must
    // absorb this without the fleet retiring the shard.
    let proxy = ChaosProxy::spawn(
        flaky_daemon,
        ChaosPlan::sequence(vec![FaultSpec { cut_response_after: Some(7), ..FaultSpec::clean() }]),
    )
    .expect("proxy");

    let healing = RetryPolicy { max_retries: 4, ..impatient() };
    let (spec, home) =
        spec_with_faulty_home(&sc, proxy.addr().to_string(), live_daemon.to_string());
    let fleet = FleetEvaluator::with_policy(spec, sc, healing, 2);

    let times = fleet.eval_many(&points);
    for (t, l) in times.iter().zip(&local) {
        assert_eq!(t.to_bits(), l.time_ms.to_bits(), "healed fleet diverged from local");
    }
    assert!(fleet.take_error().is_none());

    let stats = fleet.stats();
    assert_eq!(stats.counters().shards_lost, 0, "a healed fault must not retire: {stats:?}");
    assert!(
        stats.shards[home].completed > 0,
        "the healed home shard must have kept working: {stats:?}"
    );
    assert!(proxy.connections() >= 2, "healing reconnects through the proxy");

    proxy.stop();
    shutdown_daemon(flaky_daemon, flaky_handle);
    shutdown_daemon(live_daemon, live_handle);
}
