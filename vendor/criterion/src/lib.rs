//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched. This shim keeps the bench sources
//! unchanged — `criterion_group!` / `criterion_main!`, benchmark groups,
//! `iter` / `iter_batched`, `black_box` — and implements a simple
//! mean-of-N wall-clock timer instead of criterion's statistical engine.
//! Good enough for A/B comparisons on one machine, which is all the
//! workspace's benches claim.

#![warn(missing_docs)]

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One finished benchmark's record, collected for `--json` export.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// `group/name` label as printed.
    pub label: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: u128,
    /// Iterations timed.
    pub iters: u64,
}

fn results() -> &'static Mutex<Vec<BenchRecord>> {
    static RESULTS: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Extracts the `--json <path>` flag from an argument list (the shim's
/// machine-readable-output extension; real criterion would reject it,
/// the shim's arg handling ignores everything it doesn't know).
pub fn json_path_from(args: &[String]) -> Option<String> {
    args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1).cloned())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders collected records as a small JSON document (hand-rolled; the
/// workspace vendors no serde).
pub fn render_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"format\": \"oriole-bench-v1\",\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"iters\": {}}}{}\n",
            json_escape(&r.label),
            r.ns_per_iter,
            r.iters,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Called by `criterion_main!` after all groups ran: when the process
/// was invoked with `--json <path>`, writes every benchmark's mean
/// time there as machine-readable JSON (so perf trajectories can be
/// tracked across commits), in addition to the stdout lines.
pub fn finish() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = json_path_from(&args) {
        let records = results().lock().expect("bench results lock");
        if let Err(e) = std::fs::write(&path, render_json(&records)) {
            eprintln!("cannot write --json {path}: {e}");
        } else {
            println!("bench: wrote {} result(s) to {path}", records.len());
        }
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How per-iteration inputs are batched in
/// [`Bencher::iter_batched`]. The shim runs one input per iteration
/// regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; criterion would batch many per allocation.
    SmallInput,
    /// Large setup output; criterion would batch few.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` product per iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level bench context (a far smaller cousin of
/// `criterion::Criterion`).
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Applies command-line configuration. The shim accepts and ignores
    /// harness arguments (`--bench`, filters) for drop-in compatibility.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _crit: self }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        run_bench(None, &name.into(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _crit: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benches in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_bench(Some(&self.name), &name.into(), self.sample_size, f);
        self
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(group: Option<&str>, name: &str, samples: u64, mut f: F) {
    let mut b = Bencher { iterations: samples, elapsed: Duration::ZERO };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let per_iter = if b.iterations > 0 { b.elapsed / b.iterations as u32 } else { Duration::ZERO };
    println!("bench: {label:<48} {per_iter:>12.3?}/iter ({} iters)", b.iterations);
    results().lock().expect("bench results lock").push(BenchRecord {
        label,
        ns_per_iter: per_iter.as_nanos(),
        iters: b.iterations,
    });
}

/// Declares a bench entry point composed of bench functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_flag_parses_and_renders() {
        let args: Vec<String> =
            ["bench", "--bench", "--json", "out.json"].iter().map(|s| s.to_string()).collect();
        assert_eq!(json_path_from(&args), Some("out.json".to_string()));
        assert_eq!(json_path_from(&args[..2]), None);
        // Trailing --json without a path is ignored, not a panic.
        let dangling: Vec<String> = vec!["bench".into(), "--json".into()];
        assert_eq!(json_path_from(&dangling), None);

        let records = vec![
            BenchRecord { label: "g/cold".into(), ns_per_iter: 1500, iters: 10 },
            BenchRecord { label: "g/\"warm\"".into(), ns_per_iter: 7, iters: 10 },
        ];
        let json = render_json(&records);
        assert!(json.contains("\"name\": \"g/cold\""));
        assert!(json.contains("\"ns_per_iter\": 1500"));
        assert!(json.contains("\\\"warm\\\""), "quotes escaped: {json}");
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn iter_runs_routine_sample_size_times() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(7);
            g.bench_function("count", |b| b.iter(|| count += 1));
            g.finish();
        }
        assert_eq!(count, 7);
    }

    #[test]
    fn iter_batched_pairs_setup_and_routine() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |v| {
                    runs += 1;
                    v
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, runs);
        assert_eq!(runs, 10);
    }
}
