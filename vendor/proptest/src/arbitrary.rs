//! The `any::<T>()` entry point for simple scalar types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite values only; property code rarely wants NaN/inf noise.
        (rng.unit_f64() - 0.5) * 2.0e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> f32 {
        f64::arbitrary_value(rng) as f32
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}
