//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
        (0..len).map(|_| self.element.gen(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let s = vec(0u32..5, 2..6);
        let mut rng = TestRng::for_case("collection_tests", 0);
        for _ in 0..100 {
            let v = s.gen(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
