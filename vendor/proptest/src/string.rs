//! Regex-flavoured string strategies: `&str` patterns as strategies,
//! mirroring proptest's `impl Strategy for &str`.
//!
//! Supports the subset this workspace's fuzz tests use: literal
//! characters, `\PC` (any printable character), character classes with
//! ranges and escapes (`[a-z0-9,()\[\]' -]`), and the quantifiers `*`,
//! `+`, `?`, `{m}`, `{m,n}`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// Any printable character (`\PC`).
    AnyPrintable,
    /// A character class as inclusive ranges.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC` / `\P{C}`: not-a-control character.
                    match chars.peek() {
                        Some('C') => {
                            chars.next();
                            Atom::AnyPrintable
                        }
                        Some('{') => {
                            for inner in chars.by_ref() {
                                if inner == '}' {
                                    break;
                                }
                            }
                            Atom::AnyPrintable
                        }
                        _ => Atom::Literal('P'),
                    }
                }
                Some(esc) => Atom::Literal(esc),
                None => Atom::Literal('\\'),
            },
            '[' => {
                let mut members: Vec<char> = Vec::new();
                let mut ranges: Vec<(char, char)> = Vec::new();
                loop {
                    match chars.next() {
                        None | Some(']') => break,
                        Some('\\') => {
                            if let Some(esc) = chars.next() {
                                members.push(esc);
                            }
                        }
                        Some('-') if !members.is_empty() && chars.peek() != Some(&']') => {
                            let lo = members.pop().expect("checked non-empty");
                            let hi = chars.next().expect("peeked");
                            ranges.push((lo, hi));
                        }
                        Some(m) => members.push(m),
                    }
                }
                ranges.extend(members.into_iter().map(|m| (m, m)));
                assert!(!ranges.is_empty(), "empty character class in pattern {pattern:?}");
                Atom::Class(ranges)
            }
            lit => Atom::Literal(lit),
        };
        let (min, max) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 32)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut bounds = String::new();
                for b in chars.by_ref() {
                    if b == '}' {
                        break;
                    }
                    bounds.push(b);
                }
                match bounds.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repetition lower bound"),
                        n.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let m: u32 = bounds.trim().parse().expect("repetition count");
                        (m, m)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::AnyPrintable => {
            // Mostly printable ASCII with an occasional wider scalar, so
            // parsers see multi-byte UTF-8 too.
            if rng.range_u64(0, 19) == 0 {
                char::from_u32(rng.range_u64(0xA1, 0x2FF) as u32).unwrap_or('¶')
            } else {
                char::from_u32(rng.range_u64(0x20, 0x7E) as u32).expect("printable ASCII")
            }
        }
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.range_usize(0, ranges.len())];
            char::from_u32(rng.range_u64(lo as u64, hi as u64) as u32).unwrap_or(lo)
        }
    }
}

/// `&str` regex patterns generate matching `String`s.
impl Strategy for &str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let reps = rng.range_u64(u64::from(piece.min), u64::from(piece.max));
            for _ in 0..reps {
                out.push(gen_char(&piece.atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string_tests", 0)
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z0-9,()\\[\\]' -]{0,24}".gen(&mut r);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| {
                c.is_ascii_lowercase()
                    || c.is_ascii_digit()
                    || ",()[]' -".contains(c)
            }), "unexpected char in {s:?}");
        }
    }

    #[test]
    fn bounded_repetition() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[A-Z]{1,6}".gen(&mut r);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_uppercase()));
        }
    }

    #[test]
    fn printable_star_produces_no_controls() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "\\PC*".gen(&mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut r = rng();
        assert_eq!("abc".gen(&mut r), "abc");
    }
}
