//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be fetched. This shim keeps the same *shape* —
//! [`Strategy`] combinators, [`prelude`], the [`proptest!`] /
//! [`prop_oneof!`] / [`prop_assert!`] macros, regex-string strategies —
//! but swaps the engine for a simple deterministic random-case runner
//! without shrinking. Every test fn runs `Config::cases` cases seeded
//! from the test name, so failures replay exactly.

pub mod test_runner;

pub mod strategy;

pub mod collection;

pub mod arbitrary;

pub mod string;

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// item becomes a normal `#[test]` that runs `Config::cases`
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategies = ( $($strat,)+ );
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let ( $($arg,)+ ) =
                        $crate::strategy::Strategy::gen(&strategies, &mut rng);
                    let outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err(e) => panic!(
                            "proptest {} failed at case {case}/{}: {e}",
                            stringify!($name),
                            config.cases,
                        ),
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or unweighted union of strategies with a
/// common value type, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts inside a property body, failing the case (not panicking
/// directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}
