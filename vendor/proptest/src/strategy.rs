//! The [`Strategy`] trait and core combinators: [`Just`], ranges,
//! tuples, [`Map`], [`Union`], [`BoxedStrategy`].

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no shrinking: `gen` draws one value
/// from the deterministic case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_gen(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_gen(&self, rng: &mut TestRng) -> S::Value {
        self.gen(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.dyn_gen(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.gen(rng))
    }
}

/// Weighted choice between strategies of a common value type (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Union<T> {
    /// A union over `(weight, strategy)` arms.
    ///
    /// # Panics
    /// If `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! requires a non-empty, positively weighted arm list");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.range_u64(0, u64::from(self.total) - 1) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.gen(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick within total")
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_u64(self.start as u64, self.end as u64 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.range_u64(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_strategies!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.gen(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop_oneof;

    fn rng() -> TestRng {
        TestRng::for_case("strategy_tests", 0)
    }

    #[test]
    fn ranges_bounded() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u32..9).gen(&mut r);
            assert!((3..9).contains(&v));
            let w = (1u64..=4).gen(&mut r);
            assert!((1..=4).contains(&w));
            let f = (0.25f64..=0.75).gen(&mut r);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let s = prop_oneof![2 => (0u32..10).prop_map(|v| v * 2), 1 => Just(99u32)];
        let mut r = rng();
        let mut saw_just = false;
        for _ in 0..200 {
            let v = s.gen(&mut r);
            assert!(v == 99 || (v % 2 == 0 && v < 20));
            saw_just |= v == 99;
        }
        assert!(saw_just, "union never picked the weighted Just arm");
    }

    #[test]
    fn boxed_clones_share_behavior() {
        let s = (5u8..=6).boxed();
        let t = s.clone();
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..50 {
            assert_eq!(s.gen(&mut r1), t.gen(&mut r2));
        }
    }
}
