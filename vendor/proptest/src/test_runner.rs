//! Runner configuration, case errors, and the deterministic case RNG.

use std::fmt;

/// Runner configuration (mirrors `proptest::test_runner::Config` for the
/// fields this workspace touches).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The input was rejected (case is skipped, not failed).
    Reject(String),
}

impl TestCaseError {
    /// A failed-case error.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected-input error.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case RNG (SplitMix64 keyed by test name and case
/// index), so any failing case replays bit-identically.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            return self.next_u64();
        }
        lo + self.next_u64() % span
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        self.range_u64(lo as u64, hi as u64 - 1) as usize
    }
}
