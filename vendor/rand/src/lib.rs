//! Offline stand-in for the parts of the `rand` crate this workspace
//! uses: a seedable RNG ([`rngs::StdRng`]), the [`Rng`] range/bool
//! sampling methods, and [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no network access, so the real crates.io
//! `rand` cannot be fetched. This shim implements xoshiro256** seeded via
//! SplitMix64 — a high-quality, deterministic generator. Stream values
//! differ from upstream `rand`'s `StdRng` (ChaCha12), which is fine:
//! everything in the workspace that consumes randomness only relies on
//! determinism-given-seed, never on specific values.

#![warn(missing_docs)]

/// Seedable random number generators.
pub mod rngs {
    /// The workspace's standard RNG: xoshiro256** with SplitMix64
    /// seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut seed: u64) -> StdRng {
        let mut next = || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference
        // implementation, transcribed).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Uniform sampling from range types (the subset of upstream's
/// `SampleRange` the workspace needs).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: any value.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Random value generation methods.
pub trait Rng {
    /// The next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (must be in
    /// `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        self.unit_f64() < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `SliceRandom` method the workspace
    /// uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = rng.gen_range(3u32..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(0usize..5);
            assert!(v < 5);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(2u64..=9);
            assert!((2..=9).contains(&i));
        }
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.unit_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }
}
